package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"github.com/archsim/fusleep/internal/bpred"
	"github.com/archsim/fusleep/internal/cache"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/isa"
	"github.com/archsim/fusleep/internal/tlb"
)

type instState uint8

const (
	stWaiting instState = iota
	stExecuting
	stDone
)

// robEntry is one in-flight instruction after rename. It carries only the
// instruction fields the back end still needs — seq for ordering, addr for
// the memory pipes, class for unit selection — rather than the whole
// isa.Inst: sources are resolved to physical registers at dispatch and the
// front-end fields (PC, outcome, target) die with the fetch queue, so the
// slim entry halves the ROB's cache footprint and the per-dispatch copy.
type robEntry struct {
	seq        uint64
	addr       uint64
	state      instState
	class      isa.Class
	src1, src2 physRef
	dest       physRef
	oldPhys    int16
	sq         int32 // store-queue slot for stores, -1 otherwise
	mispredict bool
}

// reorderBuffer is a ring of in-flight instructions. Physical capacity is
// rounded up to a power of two so slot arithmetic is a mask, while the
// logical capacity (full()) stays exactly cfg.ROBSize. A slot index is
// stable for the lifetime of its entry, which is what lets the event wheel
// and ready list refer to instructions by slot.
type reorderBuffer struct {
	entries []robEntry
	mask    int
	size    int // logical capacity
	head    int
	count   int
}

func newROB(size int) *reorderBuffer {
	capacity := nextPow2(size)
	return &reorderBuffer{entries: make([]robEntry, capacity), mask: capacity - 1, size: size}
}

func (r *reorderBuffer) full() bool { return r.count == r.size }

// alloc returns the next tail slot for in-place filling, without claiming
// it: dispatch writes the entry through the pointer and only then bumps
// count, so a dispatch that bails mid-entry (no free physical register)
// abandons the slot for free instead of copying a ~70-byte robEntry in and
// out. The caller must bump r.count to commit the slot.
//
//fusleepvet:hotpath
func (r *reorderBuffer) alloc() (int, *robEntry) {
	idx := (r.head + r.count) & r.mask
	return idx, &r.entries[idx]
}

// at returns the entry at logical position i from the head (0 = oldest).
//
//fusleepvet:hotpath
func (r *reorderBuffer) at(i int) *robEntry {
	return &r.entries[(r.head+i)&r.mask]
}

//fusleepvet:hotpath
func (r *reorderBuffer) popFront() {
	r.head = (r.head + 1) & r.mask
	r.count--
}

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

type fetchEntry struct {
	inst       isa.Inst
	mispredict bool
}

// storeQEntry is one in-flight store. The store queue is ordered by seq:
// stores enter at dispatch (program order) and leave at commit (also
// program order), so the ring's entries are always seq-ascending front to
// back. Store-to-load forwarding relies on that invariant.
type storeQEntry struct {
	seq       uint64
	addr      uint64
	addrKnown bool
}

// ring is a fixed-capacity FIFO over preallocated slots. push returns the
// physical slot index, which is stable for the entry's lifetime — that is
// what lets robEntry.sq address its store directly.
type ring[T any] struct {
	entries []T
	head    int
	count   int
}

func newRing[T any](size int) *ring[T] { return &ring[T]{entries: make([]T, size)} }

func (q *ring[T]) full() bool { return q.count == len(q.entries) }

//fusleepvet:hotpath
func (q *ring[T]) push(e T) int {
	idx := q.head + q.count
	if idx >= len(q.entries) {
		idx -= len(q.entries)
	}
	q.entries[idx] = e
	q.count++
	return idx
}

// pushSlot claims the next slot and returns it for in-place filling,
// avoiding a pass-by-value copy of large entries. The caller must set
// every field — slots are recycled, not zeroed.
//
//fusleepvet:hotpath
func (q *ring[T]) pushSlot() *T {
	idx := q.head + q.count
	if idx >= len(q.entries) {
		idx -= len(q.entries)
	}
	q.count++
	return &q.entries[idx]
}

func (q *ring[T]) front() *T { return &q.entries[q.head] }

//fusleepvet:hotpath
func (q *ring[T]) popFront() {
	q.head++
	if q.head == len(q.entries) {
		q.head = 0
	}
	q.count--
}

// storeIndex maps word address -> ascending seqs of address-known stores in
// the store queue, so forwarding checks are a single map probe instead of a
// store-queue scan. Seq lists are recycled through spare to keep the
// steady state allocation-free.
type storeIndex struct {
	byWord map[uint64][]uint64
	spare  [][]uint64
}

func newStoreIndex() *storeIndex { return &storeIndex{byWord: make(map[uint64][]uint64)} }

//fusleepvet:hotpath
func (ix *storeIndex) add(word, seq uint64) {
	s, ok := ix.byWord[word]
	if !ok && len(ix.spare) > 0 {
		s = ix.spare[len(ix.spare)-1][:0]
		ix.spare = ix.spare[:len(ix.spare)-1]
	}
	// Stores become address-known in issue order, not program order, so
	// keep the (tiny, store-queue-bounded) list sorted on insert.
	s = append(s, seq)
	for i := len(s) - 1; i > 0 && s[i-1] > seq; i-- {
		s[i] = s[i-1]
		s[i-1] = seq
	}
	ix.byWord[word] = s
}

//fusleepvet:hotpath
func (ix *storeIndex) remove(word, seq uint64) {
	s := ix.byWord[word]
	for i, v := range s {
		if v == seq {
			copy(s[i:], s[i+1:])
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(ix.byWord, word)
		if s != nil {
			ix.spare = append(ix.spare, s)
		}
		return
	}
	ix.byWord[word] = s
}

// olderThan reports whether an address-known store to word exists with
// seq < loadSeq, i.e. an older store the load can forward from.
//
//fusleepvet:hotpath
func (ix *storeIndex) olderThan(word, loadSeq uint64) bool {
	s := ix.byWord[word]
	return len(s) > 0 && s[0] < loadSeq
}

// batchStream is the optional bulk fast path a trace source can implement:
// NextBatch returns the next contiguous run of instructions and takes back
// the fully-consumed slice from the previous call for recycling. The CPU
// then fetches by indexing the batch instead of paying an interface call
// and a ~56-byte struct copy per instruction; sources without it are read
// through Next as before.
type batchStream interface {
	NextBatch(recycle []isa.Inst) ([]isa.Inst, bool)
}

// CPU is one simulation instance; build with New and execute with Run.
type CPU struct {
	cfg     Config
	stream  isa.Stream
	batched batchStream // non-nil when stream implements the bulk path

	pred *bpred.Predictor
	mem  *cache.Hierarchy
	itlb *tlb.TLB
	dtlb *tlb.TLB

	intRen, fpRen *renamer
	rob           *reorderBuffer

	// Per-class functional-unit pools. agu aliases alu when the machine
	// issues address generation down the integer ALU ports (cfg.AGUs == 0),
	// so loads and stores contend with integer ops exactly as the paper's
	// machine does; pools lists each distinct pool once for tick/flush.
	alu, agu, mult, fpalu, fpmult *classPool
	pools                         []*classPool

	intIQCount, fpIQCount int
	lqCount               int
	storeQ                *ring[storeQEntry]
	storeIdx              *storeIndex

	fetchQ *ring[fetchEntry]

	// wheel is the completion calendar: pending completions for cycle t
	// live in wheel[t & wheelMask]. Slot slices are drained in place and
	// keep their capacity, so scheduling is allocation-free after warmup.
	wheel     [][]int32
	wheelMask uint64

	// readyQ holds ROB slots of dispatched instructions whose operands are
	// all ready, in program (seq) order — the issue window. pendingSrcs
	// counts outstanding operands per ROB slot; intDeps/fpDeps list the
	// ROB slots sleeping on each physical register, woken by complete().
	readyQ      []int32
	pendingSrcs []uint8
	intDeps     [][]int32
	fpDeps      [][]int32

	cycle            uint64
	fetchBlockedTill uint64
	redirectPending  bool
	lastFetchLine    uint64
	haveFetchLine    bool
	fetchLineShift   uint // log2(L1I line size): PC -> fetch line

	// buf[bufPos:] is the unconsumed head of the instruction stream: a
	// whole generator batch on the bulk path, a one-element window (one)
	// refilled per instruction otherwise.
	buf       []isa.Inst
	bufPos    int
	one       [1]isa.Inst
	eof       bool
	committed uint64
	fetched   uint64

	loadForwards  uint64
	mispredStalls uint64
	classCounts   [16]uint64
	lastProgress  uint64
	stopRequested bool
	wordAddrShift uint // store-forwarding match granularity (8B words)
}

// ErrDeadlock is returned when the pipeline stops making progress, which
// indicates a modeling bug rather than a workload property.
var ErrDeadlock = errors.New("pipeline: no forward progress")

// deadlockWindow is the progress watchdog horizon in cycles.
const deadlockWindow = 1_000_000

// maxLatency bounds the completion delay any single instruction can be
// scheduled with: the worst-case load (address generation, DTLB miss, then
// a miss all the way down the hierarchy) or the longest fixed execution
// latency. It sizes the event wheel.
func maxLatency(cfg Config) int {
	worstLoad := LatAGU + cfg.DTLB.MissPenalty +
		cfg.Mem.L1D.Latency + cfg.Mem.L2.Latency + cfg.Mem.MemLatency
	m := worstLoad
	// Every fixed latency passed to schedule(): execution latencies, the
	// forwarding fast path, and the 1-cycle Nop drain.
	for _, l := range [...]int{
		LatIntALU, LatBranch, LatIntMult, LatIntDiv,
		LatFPALU, LatFPMult, LatFPDiv,
		LatAGU + LatForward, 1,
	} {
		if l > m {
			m = l
		}
	}
	return m
}

// New builds a CPU over the given trace stream.
func New(cfg Config, stream isa.Stream) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stream == nil {
		return nil, errors.New("pipeline: nil stream")
	}
	pred, err := bpred.New(cfg.Bpred)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	itlb, err := tlb.New(cfg.ITLB)
	if err != nil {
		return nil, err
	}
	dtlb, err := tlb.New(cfg.DTLB)
	if err != nil {
		return nil, err
	}
	intRen, err := newRenamer(isa.NumIntRegs, cfg.IntPhysRegs)
	if err != nil {
		return nil, err
	}
	fpRen, err := newRenamer(isa.NumFPRegs, cfg.FPPhysRegs)
	if err != nil {
		return nil, err
	}
	rob := newROB(cfg.ROBSize)
	// Wheel slots must cover [cycle+1, cycle+maxLatency] without wrap
	// collisions, so the span is one past the maximum schedulable delay.
	wheelSize := nextPow2(maxLatency(cfg) + 1)
	alu := newClassPool(cfg.IntALUs)
	agu := alu
	if cfg.AGUs > 0 {
		agu = newClassPool(cfg.AGUs)
	}
	mult := newClassPool(cfg.IntMults)
	fpalu := newClassPool(cfg.FPALUs)
	fpmult := newClassPool(cfg.FPMults)
	pools := []*classPool{alu}
	if agu != alu {
		pools = append(pools, agu)
	}
	pools = append(pools, mult, fpalu, fpmult)
	batched, _ := stream.(batchStream)
	return &CPU{
		cfg:            cfg,
		stream:         stream,
		batched:        batched,
		fetchLineShift: uint(bits.TrailingZeros(uint(cfg.Mem.L1I.LineSize))),
		pred:           pred,
		mem:            mem,
		itlb:           itlb,
		dtlb:           dtlb,
		intRen:         intRen,
		fpRen:          fpRen,
		rob:            rob,
		alu:            alu,
		agu:            agu,
		mult:           mult,
		fpalu:          fpalu,
		fpmult:         fpmult,
		pools:          pools,
		storeQ:         newRing[storeQEntry](cfg.StoreQSize),
		storeIdx:       newStoreIndex(),
		fetchQ:         newRing[fetchEntry](cfg.FetchQueueSize),
		wheel:          make([][]int32, wheelSize),
		wheelMask:      uint64(wheelSize - 1),
		readyQ:         make([]int32, 0, cfg.ROBSize),
		pendingSrcs:    make([]uint8, len(rob.entries)),
		intDeps:        make([][]int32, cfg.IntPhysRegs),
		fpDeps:         make([][]int32, cfg.FPPhysRegs),
		wordAddrShift:  3,
	}, nil
}

// ctxCheckMask throttles context polling in the run loop: the context is
// consulted once every ctxCheckMask+1 cycles, keeping the per-cycle cost
// negligible while still stopping a multi-million-cycle run within
// microseconds of cancellation.
const ctxCheckMask = 8191

// Run executes the simulation to trace exhaustion (or cfg.MaxInsts) and
// returns the measurement results.
func (c *CPU) Run() (Result, error) { return c.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the loop polls ctx
// periodically and returns ctx.Err() (wrapped) as soon as it is done. The
// partial measurement up to the abort cycle is returned alongside the
// error, with every pool flushed so the profiles cover the simulated
// horizon exactly — open idle runs are closed, never dropped.
func (c *CPU) RunContext(ctx context.Context) (Result, error) {
	defer c.stream.Close()
	for !c.finished() {
		c.commit()
		if c.stopRequested {
			break
		}
		c.complete()
		c.issue()
		c.dispatch()
		c.fetch()
		c.cycle++
		if c.cycle&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				c.flushPools()
				return c.result(), fmt.Errorf("pipeline: run aborted at cycle %d (committed %d): %w",
					c.cycle, c.committed, err)
			}
		}
		if c.cycle-c.lastProgress > deadlockWindow {
			c.flushPools()
			return c.result(), fmt.Errorf("%w at cycle %d (committed %d)", ErrDeadlock, c.cycle, c.committed)
		}
	}
	c.flushPools()
	return c.result(), nil
}

// flushPools settles every class pool's open busy/idle run against the
// simulated horizon [0, c.cycle). Runs once per simulation, on every exit
// path — clean completion, MaxInsts stop, cancellation, deadlock — so the
// recorded interval mass always matches the cycles actually simulated.
func (c *CPU) flushPools() {
	for _, p := range c.pools {
		p.flush(c.cycle)
	}
}

func (c *CPU) finished() bool {
	return c.eof && c.bufPos >= len(c.buf) && c.fetchQ.count == 0 && c.rob.count == 0
}

func (c *CPU) result() Result {
	res := Result{
		Cycles:                c.cycle,
		Committed:             c.committed,
		Fetched:               c.fetched,
		Bpred:                 c.pred.Stats(),
		L1I:                   c.mem.L1I.Stats(),
		L1D:                   c.mem.L1D.Stats(),
		L2:                    c.mem.L2.Stats(),
		ITLB:                  c.itlb.Stats(),
		DTLB:                  c.dtlb.Stats(),
		LoadForwards:          c.loadForwards,
		FetchMispredictStalls: c.mispredStalls,
		ClassCounts:           c.classCounts,
	}
	// FUs and the IntALU class entry are the same view; share one snapshot
	// (consumers treat profiles as read-only) instead of copying the
	// interval maps twice.
	aluProfiles := c.alu.profiles()
	res.FUs = aluProfiles
	res.Classes = append(res.Classes, ClassProfile{Class: fu.IntALU, Units: aluProfiles})
	if c.agu != c.alu {
		res.Classes = append(res.Classes, ClassProfile{Class: fu.AGU, Units: c.agu.profiles()})
	}
	res.Classes = append(res.Classes,
		ClassProfile{Class: fu.Mult, Units: c.mult.profiles()},
		ClassProfile{Class: fu.FPALU, Units: c.fpalu.profiles()},
		ClassProfile{Class: fu.FPMult, Units: c.fpmult.profiles()},
	)
	return res
}

// peek returns the next instruction of the stream without consuming it.
// The pointer aliases the stream buffer and is valid until consume; fetch
// copies the instruction exactly once, into the fetch queue slot.
//
//fusleepvet:hotpath
func (c *CPU) peek() (*isa.Inst, bool) {
	if c.bufPos < len(c.buf) {
		return &c.buf[c.bufPos], true
	}
	return c.refill()
}

// refill replenishes the stream window: a whole batch at a time when the
// source implements batchStream (handing the drained batch back for
// recycling), one instruction otherwise.
func (c *CPU) refill() (*isa.Inst, bool) {
	if c.eof {
		return nil, false
	}
	if c.batched != nil {
		batch, ok := c.batched.NextBatch(c.buf)
		c.buf, c.bufPos = batch, 0
		if !ok {
			c.eof = true
			return nil, false
		}
		return &c.buf[0], true
	}
	in, ok := c.stream.Next()
	if !ok {
		c.eof = true
		return nil, false
	}
	c.one[0] = in
	c.buf, c.bufPos = c.one[:], 0
	return &c.buf[0], true
}

//fusleepvet:hotpath
func (c *CPU) consume() { c.bufPos++ }

// ---- fetch ----

//fusleepvet:hotpath
func (c *CPU) fetch() {
	if c.redirectPending {
		c.mispredStalls++
		return
	}
	if c.cycle < c.fetchBlockedTill {
		c.mispredStalls++
		return
	}
	slots := c.cfg.FetchWidth
	for slots > 0 && !c.fetchQ.full() {
		in, ok := c.peek()
		if !ok {
			return
		}
		line := in.PC >> c.fetchLineShift
		if !c.haveFetchLine || line != c.lastFetchLine {
			lat := c.mem.L1I.Access(in.PC, false) + c.itlb.Access(in.PC)
			c.lastFetchLine = line
			c.haveFetchLine = true
			if extra := lat - c.cfg.Mem.L1I.Latency; extra > 0 {
				// Miss: stall fetch; the line is filled, so the retry
				// proceeds without re-access.
				c.fetchBlockedTill = c.cycle + uint64(extra)
				return
			}
		}
		c.fetched++
		fe := c.fetchQ.pushSlot()
		fe.inst = *in
		fe.mispredict = false
		c.consume()
		if in.Class.IsCtrl() {
			r := c.pred.PredictRef(&fe.inst)
			c.pred.UpdateRef(&fe.inst, r)
			if bpred.MispredictedRef(&fe.inst, r) {
				fe.mispredict = true
				c.redirectPending = true
				return
			}
			slots--
			if r.PredTaken {
				// Correctly predicted taken control flow ends the fetch
				// group; the redirected group starts next cycle.
				return
			}
			continue
		}
		slots--
	}
}

// ---- dispatch (decode + rename) ----

//fusleepvet:hotpath
func (c *CPU) ref(r isa.Reg) physRef {
	if r == isa.RegNone {
		return noReg
	}
	if r.IsFP() {
		return physRef{idx: c.fpRen.lookup(int(r) - isa.NumIntRegs), fp: true}
	}
	return physRef{idx: c.intRen.lookup(int(r))}
}

//fusleepvet:hotpath
func (c *CPU) renamerFor(r isa.Reg) (*renamer, int) {
	if r.IsFP() {
		return c.fpRen, int(r) - isa.NumIntRegs
	}
	return c.intRen, int(r)
}

//fusleepvet:hotpath
func (c *CPU) dispatch() {
	for n := 0; n < c.cfg.DecodeWidth && c.fetchQ.count > 0; n++ {
		fe := c.fetchQ.front()
		in := &fe.inst
		if c.rob.full() {
			return
		}
		switch {
		case in.Class == isa.Load:
			if c.lqCount >= c.cfg.LoadQSize {
				return
			}
		case in.Class == isa.Store:
			if c.storeQ.count >= c.cfg.StoreQSize {
				return
			}
		case in.Class.IsFP():
			if c.fpIQCount >= c.cfg.FPIQSize {
				return
			}
		case in.Class != isa.Nop:
			if c.intIQCount >= c.cfg.IntIQSize {
				return
			}
		}
		// Fill the tail ROB slot in place; the slot is only claimed
		// (count++) once rename succeeds, so bailing on a full renamer
		// abandons the half-written slot with no copy-out.
		idx, e := c.rob.alloc()
		e.seq = in.Seq
		e.addr = in.Addr
		e.class = in.Class
		e.state = stWaiting
		e.src1 = c.ref(in.Src1)
		e.src2 = c.ref(in.Src2)
		e.dest = noReg
		e.oldPhys = -1
		e.sq = -1
		e.mispredict = fe.mispredict
		if in.Dest != isa.RegNone {
			ren, arch := c.renamerFor(in.Dest)
			if !ren.canAllocate() {
				return
			}
			newPhys, oldPhys, _ := ren.allocate(arch)
			e.dest = physRef{idx: newPhys, fp: in.Dest.IsFP()}
			e.oldPhys = oldPhys
		}
		c.rob.count++
		switch {
		case in.Class == isa.Nop:
			e.state = stExecuting
			c.schedule(idx, 1)
		case in.Class == isa.Load:
			c.lqCount++
			c.enqueue(idx, e)
		case in.Class == isa.Store:
			e.sq = int32(c.storeQ.push(storeQEntry{seq: in.Seq, addr: in.Addr}))
			c.enqueue(idx, e)
		case in.Class.IsFP():
			c.fpIQCount++
			c.enqueue(idx, e)
		default:
			c.intIQCount++
			c.enqueue(idx, e)
		}
		c.fetchQ.popFront()
	}
}

// enqueue places a freshly dispatched instruction in the issue window:
// straight onto the ready list when its operands are available, otherwise
// asleep on the producing physical registers until wakeup marks them ready.
// Dispatch runs in program order, so appending keeps readyQ seq-sorted.
//
//fusleepvet:hotpath
func (c *CPU) enqueue(idx int, e *robEntry) {
	var pending uint8
	if e.src1.idx >= 0 && !c.ready(e.src1) {
		c.addDep(e.src1, int32(idx))
		pending++
	}
	if e.src2.idx >= 0 && !c.ready(e.src2) {
		c.addDep(e.src2, int32(idx))
		pending++
	}
	if pending == 0 {
		c.readyQ = append(c.readyQ, int32(idx))
		return
	}
	c.pendingSrcs[idx] = pending
}

//fusleepvet:hotpath
func (c *CPU) addDep(r physRef, idx int32) {
	if r.fp {
		c.fpDeps[r.idx] = append(c.fpDeps[r.idx], idx)
		return
	}
	c.intDeps[r.idx] = append(c.intDeps[r.idx], idx)
}

// ---- issue + execute ----

//fusleepvet:hotpath
func (c *CPU) ready(r physRef) bool {
	if r.idx < 0 {
		return true
	}
	if r.fp {
		return c.fpRen.isReady(r.idx)
	}
	return c.intRen.isReady(r.idx)
}

// schedule books the instruction's completion lat cycles from now on the
// event wheel.
//
//fusleepvet:hotpath
func (c *CPU) schedule(robIdx int, lat int) {
	if uint64(lat) > c.wheelMask {
		panic(fmt.Sprintf("pipeline: completion latency %d exceeds event wheel span %d", lat, c.wheelMask+1))
	}
	slot := (c.cycle + uint64(lat)) & c.wheelMask
	c.wheel[slot] = append(c.wheel[slot], int32(robIdx))
}

// issue selects instructions from the ready list in program order, oldest
// first, exactly as the previous full-ROB scan did: an instruction blocked
// on a functional unit or memory port is skipped without consuming issue
// bandwidth, and retried next cycle. Per-pool "exhausted" flags shortcut
// repeat allocation attempts within the cycle — once a pool rejects an
// allocation at this cycle it stays full until tick advances, since issue
// only ever makes units busier.
//
//fusleepvet:hotpath
func (c *CPU) issue() {
	q := c.readyQ
	if len(q) == 0 {
		return
	}
	budget := c.cfg.IssueWidth
	ports := c.cfg.MemPorts
	// When address generation shares the integer ALU ports, the two
	// classes share one pool and therefore one fullness flag: exhausting
	// the pool through either class blocks both, exactly as the single
	// intFull flag did before the pools split.
	sharedAGU := c.agu == c.alu
	var aluFull, aguFull, multFull, fpaluFull, fpmultFull bool
	w := 0
	for i := 0; i < len(q); i++ {
		if budget == 0 {
			w += copy(q[w:], q[i:])
			break
		}
		idx := q[i]
		e := &c.rob.entries[idx]
		issued := false
		switch e.class {
		case isa.IntALU, isa.Branch, isa.Jump, isa.Call, isa.Return:
			if !aluFull {
				if _, ok := c.alu.tryAllocate(c.cycle, LatIntALU); ok {
					c.schedule(int(idx), LatIntALU)
					c.intIQCount--
					issued = true
				} else {
					aluFull = true
					if sharedAGU {
						aguFull = true
					}
				}
			}
		case isa.IntMult:
			if !multFull {
				if _, ok := c.mult.tryAllocate(c.cycle, LatIntMult); ok {
					c.schedule(int(idx), LatIntMult)
					c.intIQCount--
					issued = true
				} else {
					multFull = true
				}
			}
		case isa.IntDiv:
			if !multFull {
				if _, ok := c.mult.tryAllocate(c.cycle, LatIntDiv); ok {
					c.schedule(int(idx), LatIntDiv)
					c.intIQCount--
					issued = true
				} else {
					multFull = true
				}
			}
		case isa.Load:
			// Address generation occupies an AGU-class unit for one cycle
			// (by default the integer pipes, 21264-style), and the access
			// needs a cache port.
			if ports > 0 && !aguFull {
				if _, ok := c.agu.tryAllocate(c.cycle, LatAGU); ok {
					ports--
					c.schedule(int(idx), c.loadLatency(e.seq, e.addr))
					issued = true
				} else {
					aguFull = true
					if sharedAGU {
						aluFull = true
					}
				}
			}
		case isa.Store:
			if ports > 0 && !aguFull {
				if _, ok := c.agu.tryAllocate(c.cycle, LatAGU); ok {
					ports--
					pen := c.dtlb.Access(e.addr)
					c.storeAddrKnown(e)
					c.schedule(int(idx), LatAGU+pen)
					issued = true
				} else {
					aguFull = true
					if sharedAGU {
						aluFull = true
					}
				}
			}
		case isa.FPALU:
			if !fpaluFull {
				if _, ok := c.fpalu.tryAllocate(c.cycle, LatFPALU); ok {
					c.schedule(int(idx), LatFPALU)
					c.fpIQCount--
					issued = true
				} else {
					fpaluFull = true
				}
			}
		case isa.FPMult:
			if !fpmultFull {
				if _, ok := c.fpmult.tryAllocate(c.cycle, LatFPMult); ok {
					c.schedule(int(idx), LatFPMult)
					c.fpIQCount--
					issued = true
				} else {
					fpmultFull = true
				}
			}
		case isa.FPDiv:
			if !fpmultFull {
				if _, ok := c.fpmult.tryAllocate(c.cycle, LatFPDiv); ok {
					c.schedule(int(idx), LatFPDiv)
					c.fpIQCount--
					issued = true
				} else {
					fpmultFull = true
				}
			}
		}
		if issued {
			e.state = stExecuting
			budget--
		} else {
			q[w] = idx
			w++
		}
	}
	c.readyQ = q[:w]
}

// loadLatency models address generation followed by either store-queue
// forwarding (when an older store to the same word has resolved its
// address) or a TLB-translated data cache access.
//
//fusleepvet:hotpath
func (c *CPU) loadLatency(seq, addr uint64) int {
	if c.forwardingStore(seq, addr) {
		c.loadForwards++
		return LatAGU + LatForward
	}
	pen := c.dtlb.Access(addr)
	return LatAGU + pen + c.mem.L1D.Access(addr, false)
}

// forwardingStore reports whether an older address-known store to the same
// word is in flight, via the word-address index (one map probe; the
// smallest indexed seq per word decides, since the lists are ascending).
//
//fusleepvet:hotpath
func (c *CPU) forwardingStore(loadSeq, addr uint64) bool {
	return c.storeIdx.olderThan(addr>>c.wordAddrShift, loadSeq)
}

// storeAddrKnown resolves a store's address at issue: the robEntry carries
// its store-queue slot, so no scan is needed to flip the flag or index the
// word.
//
//fusleepvet:hotpath
func (c *CPU) storeAddrKnown(e *robEntry) {
	s := &c.storeQ.entries[e.sq]
	s.addrKnown = true
	c.storeIdx.add(s.addr>>c.wordAddrShift, s.seq)
}

// ---- completion ----

// complete drains the event wheel slot for the current cycle: finished
// instructions mark their destination ready and wake the instructions
// sleeping on it onto the ready list (in seq order).
//
//fusleepvet:hotpath
func (c *CPU) complete() {
	slot := c.cycle & c.wheelMask
	list := c.wheel[slot]
	if len(list) == 0 {
		return
	}
	for _, idx := range list {
		e := &c.rob.entries[idx]
		e.state = stDone
		if e.dest.idx >= 0 {
			c.wakeup(e.dest)
		}
		if e.mispredict {
			// The mispredicted control instruction has resolved: redirect
			// fetch after the recovery penalty.
			c.fetchBlockedTill = c.cycle + uint64(c.cfg.MispredictPenalty)
			c.redirectPending = false
			c.haveFetchLine = false
		}
	}
	c.wheel[slot] = list[:0]
}

// wakeup marks the physical register ready and moves its now-unblocked
// consumers to the ready list. Dependent lists are drained in place and
// keep their capacity.
//
//fusleepvet:hotpath
func (c *CPU) wakeup(dest physRef) {
	var deps []int32
	if dest.fp {
		c.fpRen.markReady(dest.idx)
		deps = c.fpDeps[dest.idx]
	} else {
		c.intRen.markReady(dest.idx)
		deps = c.intDeps[dest.idx]
	}
	if len(deps) == 0 {
		return
	}
	for _, d := range deps {
		c.pendingSrcs[d]--
		if c.pendingSrcs[d] == 0 {
			c.insertReady(d)
		}
	}
	if dest.fp {
		c.fpDeps[dest.idx] = deps[:0]
	} else {
		c.intDeps[dest.idx] = deps[:0]
	}
}

// insertReady places a woken instruction into readyQ preserving ascending
// seq order, so issue keeps the oldest-first priority of the original
// full-ROB scan. Wakeups within a cycle arrive in completion order, hence
// the sorted insert (the ready list is short — bounded by the issue
// queues, not the ROB).
//
//fusleepvet:hotpath
func (c *CPU) insertReady(idx int32) {
	q := c.readyQ
	seq := c.rob.entries[idx].seq
	lo, hi := 0, len(q)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.rob.entries[q[mid]].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q = append(q, 0)
	copy(q[lo+1:], q[lo:])
	q[lo] = idx
	c.readyQ = q
}

// ---- commit ----

//fusleepvet:hotpath
func (c *CPU) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.rob.count > 0; n++ {
		e := c.rob.at(0)
		if e.state != stDone {
			return
		}
		switch e.class {
		case isa.Store:
			c.mem.L1D.Access(e.addr, true)
			if c.storeQ.count == 0 || c.storeQ.front().seq != e.seq {
				panic("pipeline: store queue out of sync with ROB")
			}
			if s := c.storeQ.front(); s.addrKnown {
				c.storeIdx.remove(s.addr>>c.wordAddrShift, s.seq)
			}
			c.storeQ.popFront()
		case isa.Load:
			c.lqCount--
		}
		if e.oldPhys >= 0 {
			if e.dest.fp {
				c.fpRen.release(e.oldPhys)
			} else {
				c.intRen.release(e.oldPhys)
			}
		}
		if int(e.class) < len(c.classCounts) {
			c.classCounts[e.class]++
		}
		c.rob.popFront()
		c.committed++
		c.lastProgress = c.cycle
		if c.cfg.MaxInsts > 0 && c.committed >= c.cfg.MaxInsts {
			c.stopRequested = true
			return
		}
	}
}
