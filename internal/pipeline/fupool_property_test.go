package pipeline

import (
	"math/rand"
	"reflect"
	"testing"
)

// poolLatencies are the op latencies the drive draws from: zero-latency
// ops (which must never register as busy), single-cycle ALU ops, and the
// multi-cycle latencies of the real machine's longer units.
var poolLatencies = []int{0, 1, 1, 2, 3, 5, 12}

// driveBoth replays one allocation schedule against a transition-driven
// classPool and the per-cycle oraclePool in lock-step. Each schedule entry
// is (cycles to advance before the attempt, latency); the oracle ticks once
// per simulated cycle, the classPool records only at transitions. Both
// pools must pick the same unit for every attempt, agree on every
// rejection, and settle to byte-identical profiles at the horizon.
func driveBoth(t *testing.T, units int, schedule [][2]int) {
	t.Helper()
	cp := newClassPool(units)
	op := newOraclePool(units)

	now := uint64(0)
	horizon := uint64(0)
	tickTo := func(end uint64) {
		for ; horizon < end; horizon++ {
			op.tick(horizon)
		}
	}
	for i, s := range schedule {
		now += uint64(s[0])
		tickTo(now) // oracle catches up to the attempt cycle
		gotIdx, gotOK := cp.tryAllocate(now, s[1])
		wantIdx, wantOK := op.tryAllocate(now, s[1])
		if gotIdx != wantIdx || gotOK != wantOK {
			t.Fatalf("attempt %d (cycle %d, lat %d): classPool -> (%d,%v), oracle -> (%d,%v)",
				i, now, s[1], gotIdx, gotOK, wantIdx, wantOK)
		}
	}
	// Run the window past the last attempt so trailing idle runs (and any
	// busy span crossing the horizon) get settled by flush.
	end := now + 7
	tickTo(end)
	cp.flush(end)
	op.flush()

	got, want := cp.profiles(), op.profiles()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("profiles diverge after %d attempts over %d cycles:\n got %+v\nwant %+v",
			len(schedule), end, got, want)
	}
}

// TestClassPoolMatchesOracleRandomized is the property test pinning the
// transition-driven recorder to the per-cycle recorder it replaced:
// randomized alloc/latency schedules over several pool widths must produce
// identical unit choices and identical idle-interval profiles.
func TestClassPoolMatchesOracleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf05e))
	for trial := 0; trial < 200; trial++ {
		units := 1 + rng.Intn(4)
		schedule := make([][2]int, 1+rng.Intn(400))
		for i := range schedule {
			gap := 0
			// Bias toward same-cycle bursts (back-to-back allocs) with
			// occasional long gaps that cross the short-run histogram cap.
			switch rng.Intn(10) {
			case 0:
				gap = rng.Intn(2 * shortRunCap)
			case 1, 2, 3:
				gap = 1 + rng.Intn(6)
			}
			schedule[i] = [2]int{gap, poolLatencies[rng.Intn(len(poolLatencies))]}
		}
		driveBoth(t, units, schedule)
	}
}

// TestClassPoolMatchesOracleEdges pins the hand-picked boundary cases the
// randomized drive might miss.
func TestClassPoolMatchesOracleEdges(t *testing.T) {
	cases := map[string][][2]int{
		// A zero-latency op must never open a busy span or break the
		// surrounding idle run.
		"zero latency only": {{0, 0}, {1, 0}, {5, 0}},
		"zero inside idle":  {{0, 3}, {10, 0}, {10, 1}},
		// Same-cycle allocations across all units, then immediately again.
		"back to back":  {{0, 1}, {0, 1}, {0, 1}, {0, 1}, {1, 1}, {0, 1}},
		"saturate pool": {{0, 5}, {0, 5}, {0, 5}, {0, 5}, {0, 5}, {0, 5}},
		// Nothing after the first op: the whole tail is one idle run that
		// only flush can close.
		"idle to end of window": {{0, 2}},
		"never allocated":       {{3, 0}},
		// A long op still in flight at the horizon: flush must hand back
		// the overcharged active cycles.
		"busy across horizon": {{0, 12}},
		// Idle run exactly at and beyond the short-run histogram cap.
		"short-cap boundary": {{0, 1}, {shortRunCap, 1}, {shortRunCap + 1, 1}, {shortRunCap - 1, 1}},
	}
	for name, schedule := range cases {
		t.Run(name, func(t *testing.T) { driveBoth(t, 2, schedule) })
	}
}

// FuzzClassPoolMatchesOracle lets the fuzzer search for schedules where
// the two recorders diverge. Each input byte encodes one attempt: the low
// three bits select the latency, the high five the gap since the previous
// attempt.
func FuzzClassPoolMatchesOracle(f *testing.F) {
	f.Add(1, []byte{})                       // no ops at all
	f.Add(2, []byte{0x00, 0x00, 0x00})       // zero-latency back-to-back
	f.Add(4, []byte{0x01, 0x01, 0x01, 0x01}) // same-cycle burst filling the pool
	f.Add(2, []byte{0x06, 0xff})             // long op, then max gap — idle to end of window
	f.Add(1, []byte{0x02, 0xf8, 0x01})       // gap across the short-run cap
	f.Add(3, []byte{0x25, 0x00, 0x41, 0x06}) // mixed gaps and latencies
	f.Fuzz(func(t *testing.T, units int, ops []byte) {
		if units < 1 || units > 8 || len(ops) > 4096 {
			t.Skip()
		}
		schedule := make([][2]int, len(ops))
		for i, b := range ops {
			// Scale the gap so schedules reach past shortRunCap.
			schedule[i] = [2]int{int(b>>3) * 9, poolLatencies[int(b&7)%len(poolLatencies)]}
		}
		driveBoth(t, units, schedule)
	})
}
