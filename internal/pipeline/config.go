// Package pipeline implements the timing model of the simulated processor:
// a 4-wide out-of-order core modeled after the Alpha 21264 with the Table 2
// resources of Dropsho et al. (MICRO 2002). The model consumes a dynamic
// instruction trace (isa.Stream) and produces cycle counts, IPC, and the
// per-functional-unit busy/idle profiles that drive the energy study.
//
// Wrong-path execution is approximated in the standard trace-driven way: on
// a mispredicted control instruction, fetch stops until the instruction
// resolves and then pays the redirect penalty. Section 5 of DESIGN.md
// discusses why this preserves the idle-interval structure the paper needs.
//
// # Performance model
//
// The per-cycle hot path is engineered for throughput and zero steady-state
// allocation, while staying cycle-exact with the straightforward model it
// replaced (the golden determinism test in golden_test.go pins every Result
// field to a pre-refactor capture):
//
//   - Completion is an event wheel (calendar queue): pending completions for
//     cycle t live in wheel[t & mask], where the wheel size is the smallest
//     power of two exceeding the maximum schedulable latency — the
//     worst-case load (AGU + DTLB miss + a miss through L1D, L2, and
//     memory) or the longest fixed execution latency, whichever is larger.
//     Every in-flight event therefore lands within one wheel revolution of
//     the current cycle and no two pending cycles share a slot. Slot slices
//     are drained in place and keep their capacity, so scheduling and
//     completing cost no map operations and no allocations.
//
//   - Issue scans a ready list, not the ROB. Dispatched instructions with
//     unavailable operands sleep on per-physical-register dependent lists
//     and are woken by completion (classic wakeup/select); instructions
//     with all operands ready sit in readyQ ordered by sequence number.
//     Issue walks readyQ oldest-first with the same per-resource skip
//     semantics as a full in-order ROB scan — a blocked instruction yields
//     its slot without consuming issue bandwidth — so selection order, and
//     therefore timing, is identical, but cost scales with ready
//     instructions (bounded by the issue queues) instead of ROB size.
//     Wakeup inserts preserve seq order; dispatch appends are already in
//     program order.
//
//   - The store queue is a ring ordered by sequence number (stores enter at
//     dispatch and leave at commit, both in program order), and a word-
//     address index maps 8-byte word -> ascending seqs of address-known
//     stores, making store-to-load forwarding one map probe instead of a
//     queue scan. Because each per-word list is ascending, the head element
//     alone decides whether an older forwarding store exists.
//
//   - Busy/idle recording is transition-driven. A unit's busy span is
//     fully known at allocation (busyUntil = now + latency), so each class
//     pool closes the idle run an allocation ends and charges the active
//     cycles right there, and a single end-of-run flush settles open runs
//     against the simulated horizon — on every exit path, including
//     cancellation. The per-cycle scan this replaced (every unit of every
//     pool, every cycle) survives as the test oracle in
//     fupool_oracle_test.go; property and fuzz tests pin the two recorders
//     to identical profiles.
//
//   - ROB, fetch queue, and store queue are fixed rings (the ROB mask is a
//     power of two); cache and TLB indexing precompute shift/mask geometry;
//     the one-instruction fetch lookahead is a value plus a flag rather
//     than a heap-escaping pointer; and workload trace batches are recycled
//     through a sync.Pool. After warmup, a simulation performs no per-
//     instruction or per-cycle heap allocation.
//
// BenchmarkPipelineSimulation (package root) tracks inst/s, cycles/s, and
// allocs/op; BENCH_pipeline.json records the trajectory across PRs.
package pipeline

import (
	"fmt"

	"github.com/archsim/fusleep/internal/bpred"
	"github.com/archsim/fusleep/internal/cache"
	"github.com/archsim/fusleep/internal/tlb"
)

// Execution latencies in cycles (SimpleScalar/Alpha-like).
const (
	LatIntALU  = 1
	LatBranch  = 1
	LatIntMult = 3
	LatIntDiv  = 20
	LatAGU     = 1
	LatForward = 2 // store-to-load forwarding after address generation
	LatFPALU   = 2
	LatFPMult  = 4
	LatFPDiv   = 12
)

// Config holds the architectural parameters of Table 2.
type Config struct {
	FetchQueueSize int // 8
	FetchWidth     int // 4
	DecodeWidth    int // 4
	IssueWidth     int // 4
	CommitWidth    int // 4

	ROBSize    int // reorder buffer, 128
	IntIQSize  int // integer issue queue, 32
	FPIQSize   int // floating point issue queue, 32
	LoadQSize  int // 32
	StoreQSize int // 32

	IntPhysRegs int // 96
	FPPhysRegs  int // 96

	IntALUs  int // integer functional units under study, 1..4
	IntMults int // dedicated multiplier units, 1
	FPALUs   int // 1
	FPMults  int // 1
	MemPorts int // data cache ports, 2

	// AGUs is the dedicated address-generation unit count. 0 (the default)
	// issues address generation down the integer ALU ports, 21264-style, so
	// loads and stores contend with integer ops for the IntALU pool exactly
	// as the paper's machine does; a positive count gives address generation
	// its own class pool with its own idle-interval profile.
	AGUs int

	MispredictPenalty int // fetch redirect latency after resolution, 10

	Bpred bpred.Config
	Mem   cache.HierarchyConfig
	ITLB  tlb.Config
	DTLB  tlb.Config

	// MaxInsts stops the simulation after committing this many
	// instructions; 0 runs the trace to exhaustion.
	MaxInsts uint64
}

// DefaultConfig returns the Table 2 machine with four integer units.
func DefaultConfig() Config {
	return Config{
		FetchQueueSize: 8,
		FetchWidth:     4,
		DecodeWidth:    4,
		IssueWidth:     4,
		CommitWidth:    4,

		ROBSize:    128,
		IntIQSize:  32,
		FPIQSize:   32,
		LoadQSize:  32,
		StoreQSize: 32,

		IntPhysRegs: 96,
		FPPhysRegs:  96,

		IntALUs:  4,
		IntMults: 1,
		FPALUs:   1,
		FPMults:  1,
		MemPorts: 2,

		MispredictPenalty: 10,

		Bpred: bpred.DefaultConfig(),
		Mem:   cache.DefaultHierarchyConfig(),
		ITLB:  tlb.DefaultITLB(),
		DTLB:  tlb.DefaultDTLB(),
	}
}

// WithIntALUs returns a copy of the configuration with n integer units, the
// knob the paper turns per benchmark.
func (c Config) WithIntALUs(n int) Config {
	c.IntALUs = n
	return c
}

// WithL2Latency returns a copy with a different L2 hit latency (Figure 7
// contrasts 12 against 32 cycles).
func (c Config) WithL2Latency(cycles int) Config {
	c.Mem.L2.Latency = cycles
	return c
}

// WithUnits returns a copy with the given per-class unit counts. Zero
// leaves a class at its current count; agus = 0 keeps address generation on
// the integer ALU ports (pass a positive count for a dedicated AGU pool).
func (c Config) WithUnits(mults, fpalus, fpmults, agus int) Config {
	if mults > 0 {
		c.IntMults = mults
	}
	if fpalus > 0 {
		c.FPALUs = fpalus
	}
	if fpmults > 0 {
		c.FPMults = fpmults
	}
	if agus > 0 {
		c.AGUs = agus
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	pos := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("pipeline: %s = %d must be positive", name, v)
		}
		return nil
	}
	checks := []struct {
		name string
		v    int
	}{
		{"FetchQueueSize", c.FetchQueueSize},
		{"FetchWidth", c.FetchWidth},
		{"DecodeWidth", c.DecodeWidth},
		{"IssueWidth", c.IssueWidth},
		{"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize},
		{"IntIQSize", c.IntIQSize},
		{"FPIQSize", c.FPIQSize},
		{"LoadQSize", c.LoadQSize},
		{"StoreQSize", c.StoreQSize},
		{"IntALUs", c.IntALUs},
		{"IntMults", c.IntMults},
		{"FPALUs", c.FPALUs},
		{"FPMults", c.FPMults},
		{"MemPorts", c.MemPorts},
	}
	for _, ch := range checks {
		if err := pos(ch.name, ch.v); err != nil {
			return err
		}
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("pipeline: negative mispredict penalty")
	}
	if c.AGUs < 0 {
		return fmt.Errorf("pipeline: AGUs = %d must be >= 0 (0 shares the integer ALU ports)", c.AGUs)
	}
	if c.IntPhysRegs < 33 || c.FPPhysRegs < 33 {
		return fmt.Errorf("pipeline: physical register files must exceed the 32 architectural registers")
	}
	if err := c.Bpred.Validate(); err != nil {
		return err
	}
	for _, cc := range []cache.Config{c.Mem.L1I, c.Mem.L1D, c.Mem.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.Mem.MemLatency < 0 {
		return fmt.Errorf("pipeline: negative memory latency")
	}
	if err := c.ITLB.Validate(); err != nil {
		return err
	}
	if err := c.DTLB.Validate(); err != nil {
		return err
	}
	return nil
}
