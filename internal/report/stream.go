package report

import (
	"encoding/json"
	"io"
	"net/http"
)

// RenderNDJSON writes each artifact as one compact JSON object per line
// (newline-delimited JSON). Unlike RenderJSON's single indented array, the
// output is incrementally parseable: consumers can act on each line as it
// arrives, which is what streaming services and `... | jq` pipelines want.
// Each line unmarshals into an Artifact.
func RenderNDJSON(w io.Writer, artifacts []Artifact) error {
	enc := json.NewEncoder(w)
	for _, a := range artifacts {
		if err := enc.Encode(a); err != nil {
			return err
		}
	}
	return nil
}

// StreamEncoder writes arbitrary values as NDJSON, flushing after every
// line when the destination supports it (http.Flusher or a *bufio.Writer
// style Flush method), so long-lived HTTP responses deliver each event as
// it happens rather than when the connection buffer fills.
type StreamEncoder struct {
	enc   *json.Encoder
	flush func()
}

// NewStreamEncoder wraps w for line-at-a-time NDJSON emission.
func NewStreamEncoder(w io.Writer) *StreamEncoder {
	s := &StreamEncoder{enc: json.NewEncoder(w)}
	switch f := w.(type) {
	case http.Flusher:
		s.flush = f.Flush
	case interface{ Flush() error }:
		s.flush = func() { _ = f.Flush() }
	}
	return s
}

// Encode writes one value as a JSON line and flushes it downstream.
func (s *StreamEncoder) Encode(v any) error {
	if err := s.enc.Encode(v); err != nil {
		return err
	}
	if s.flush != nil {
		s.flush()
	}
	return nil
}
