package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ArtifactKind discriminates the typed payload of an Artifact.
type ArtifactKind string

const (
	// KindTable marks an artifact whose payload is a Table.
	KindTable ArtifactKind = "table"
	// KindSeries marks an artifact whose payload is a Series.
	KindSeries ArtifactKind = "series"
)

// Artifact is one machine-readable experiment result: an identified,
// titled, typed payload (a table of rows or a set of curves). Artifacts
// are what the public engine API returns; renderers turn them into text,
// JSON, or CSV without the producers knowing the output format.
type Artifact struct {
	// ID is the producing experiment's identifier (e.g. "fig8a"), or a
	// caller-chosen tag for ad-hoc artifacts.
	ID string `json:"id,omitempty"`
	// Paper names the reproduced artifact in the paper ("Figure 8a"),
	// "extension" for analyses beyond it, or empty for ad-hoc results.
	Paper string `json:"paper,omitempty"`
	// Title is the artifact's human-readable caption.
	Title string `json:"title"`
	// Kind selects which payload field is set.
	Kind ArtifactKind `json:"kind"`
	// Table is the payload when Kind == KindTable.
	Table *Table `json:"table,omitempty"`
	// Series is the payload when Kind == KindSeries.
	Series *Series `json:"series,omitempty"`
}

// NewArtifact wraps a produced Renderable (a *Table or *Series) as a
// structured artifact tagged with the producing experiment's identity.
func NewArtifact(id, paper string, r Renderable) (Artifact, error) {
	a := Artifact{ID: id, Paper: paper}
	switch v := r.(type) {
	case *Table:
		a.Kind = KindTable
		a.Table = v
	case *Series:
		a.Kind = KindSeries
		a.Series = v
	default:
		return Artifact{}, fmt.Errorf("report: cannot build artifact from %T", r)
	}
	a.Title = r.Name()
	return a, nil
}

// TableArtifact wraps a table as an ad-hoc artifact.
func TableArtifact(id string, t *Table) Artifact {
	return Artifact{ID: id, Title: t.Title, Kind: KindTable, Table: t}
}

// SeriesArtifact wraps a series set as an ad-hoc artifact.
func SeriesArtifact(id string, s *Series) Artifact {
	return Artifact{ID: id, Title: s.Title, Kind: KindSeries, Series: s}
}

// renderable returns the artifact's payload as a text-renderable value.
func (a Artifact) renderable() (Renderable, error) {
	switch {
	case a.Kind == KindTable && a.Table != nil:
		return a.Table, nil
	case a.Kind == KindSeries && a.Series != nil:
		return a.Series, nil
	}
	return nil, fmt.Errorf("report: artifact %q (kind %q) has no payload", a.ID, a.Kind)
}

// Renderer writes a set of artifacts in one output format.
type Renderer func(w io.Writer, artifacts []Artifact) error

// Formats lists the built-in renderer names accepted by RendererFor.
func Formats() []string { return []string{"text", "json", "csv", "ndjson"} }

// RendererFor maps a format name ("text", "json", "csv", "ndjson") to its
// renderer.
func RendererFor(format string) (Renderer, error) {
	switch format {
	case "text", "":
		return RenderText, nil
	case "json":
		return RenderJSON, nil
	case "csv":
		return RenderCSV, nil
	case "ndjson":
		return RenderNDJSON, nil
	}
	return nil, fmt.Errorf("report: unknown format %q (have %v)", format, Formats())
}

// RenderText writes the artifacts as aligned text tables, each preceded by
// an identity banner when the artifact carries one.
func RenderText(w io.Writer, artifacts []Artifact) error {
	for _, a := range artifacts {
		r, err := a.renderable()
		if err != nil {
			return err
		}
		if a.ID != "" {
			banner := a.ID
			if a.Paper != "" {
				banner = fmt.Sprintf("[%s] %s", a.ID, a.Paper)
			}
			if _, err := fmt.Fprintf(w, "== %s ==\n", banner); err != nil {
				return err
			}
		}
		if err := r.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON writes the artifacts as one indented JSON array; the output
// unmarshals back into []Artifact with the typed payloads intact.
func RenderJSON(w io.Writer, artifacts []Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifacts)
}

// RenderCSV writes each artifact as a CSV block introduced by a comment
// line naming it; tables emit their header and rows verbatim, series emit
// an x column followed by one column per curve.
func RenderCSV(w io.Writer, artifacts []Artifact) error {
	for i, a := range artifacts {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# [%s] %s\n", a.ID, a.Title); err != nil {
			return err
		}
		cw := csv.NewWriter(w)
		switch {
		case a.Kind == KindTable && a.Table != nil:
			if err := cw.Write(a.Table.Columns); err != nil {
				return err
			}
			for _, row := range a.Table.Rows {
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		case a.Kind == KindSeries && a.Series != nil:
			s := a.Series
			if err := cw.Write(append([]string{s.XLabel}, s.Names...)); err != nil {
				return err
			}
			for i, x := range s.X {
				rec := make([]string, 0, len(s.Names)+1)
				rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
				for j := range s.Names {
					rec = append(rec, strconv.FormatFloat(s.Y[j][i], 'g', -1, 64))
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("report: artifact %q (kind %q) has no payload", a.ID, a.Kind)
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}
