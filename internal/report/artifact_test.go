package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleArtifacts(t *testing.T) []Artifact {
	t.Helper()
	tbl := NewTable("Energy table", "policy", "E/E_base")
	tbl.AddRow("MaxSleep", "1.08")
	tbl.AddRow("AlwaysActive", "1.00")
	tbl.AddNote("alpha=0.5")
	ta, err := NewArtifact("fig8a", "Figure 8a", tbl)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSeries("Breakeven", "p", "cycles", "alpha=0.5")
	s.AddPoint(0.05, 20)
	s.AddPoint(0.50, 2.5)
	sa, err := NewArtifact("fig4a", "Figure 4a", s)
	if err != nil {
		t.Fatal(err)
	}
	return []Artifact{ta, sa}
}

func TestNewArtifactKinds(t *testing.T) {
	arts := sampleArtifacts(t)
	if arts[0].Kind != KindTable || arts[0].Table == nil || arts[0].Series != nil {
		t.Errorf("table artifact malformed: %+v", arts[0])
	}
	if arts[1].Kind != KindSeries || arts[1].Series == nil || arts[1].Table != nil {
		t.Errorf("series artifact malformed: %+v", arts[1])
	}
	if arts[0].Title != "Energy table" || arts[1].Title != "Breakeven" {
		t.Errorf("titles not propagated: %q %q", arts[0].Title, arts[1].Title)
	}
	if _, err := NewArtifact("x", "y", nil); err == nil {
		t.Error("nil renderable accepted")
	}
}

func TestRenderTextBanner(t *testing.T) {
	var b bytes.Buffer
	if err := RenderText(&b, sampleArtifacts(t)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== [fig8a] Figure 8a ==", "MaxSleep", "== [fig4a] Figure 4a ==", "Breakeven"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Ad-hoc artifacts without an ID render without a banner.
	b.Reset()
	tbl := NewTable("t", "a")
	tbl.AddRow("1")
	if err := RenderText(&b, []Artifact{{Title: "t", Kind: KindTable, Table: tbl}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "==") {
		t.Errorf("unexpected banner:\n%s", b.String())
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	arts := sampleArtifacts(t)
	var b bytes.Buffer
	if err := RenderJSON(&b, arts); err != nil {
		t.Fatal(err)
	}
	var back []Artifact
	if err := json.Unmarshal(b.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arts, back) {
		t.Errorf("round trip lost data:\nhave %+v\nwant %+v", back, arts)
	}
}

func TestRenderCSV(t *testing.T) {
	var b bytes.Buffer
	if err := RenderCSV(&b, sampleArtifacts(t)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# [fig8a] Energy table",
		"policy,E/E_base",
		"MaxSleep,1.08",
		"# [fig4a] Breakeven",
		"p,alpha=0.5",
		"0.05,20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv output missing %q:\n%s", want, out)
		}
	}
}

func TestRendererForNames(t *testing.T) {
	for _, f := range Formats() {
		if _, err := RendererFor(f); err != nil {
			t.Errorf("RendererFor(%q): %v", f, err)
		}
	}
	if _, err := RendererFor("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
	// Empty string defaults to text.
	if _, err := RendererFor(""); err != nil {
		t.Errorf("empty format: %v", err)
	}
}

func TestRenderPayloadMissing(t *testing.T) {
	bad := []Artifact{{ID: "x", Kind: KindTable}}
	if err := RenderText(new(bytes.Buffer), bad); err == nil {
		t.Error("payload-less artifact rendered as text")
	}
	if err := RenderCSV(new(bytes.Buffer), bad); err == nil {
		t.Error("payload-less artifact rendered as csv")
	}
}

func TestRenderNDJSON(t *testing.T) {
	arts := sampleArtifacts(t)
	var buf bytes.Buffer
	if err := RenderNDJSON(&buf, arts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(arts) {
		t.Fatalf("ndjson lines = %d, want one per artifact (%d)", len(lines), len(arts))
	}
	for i, line := range lines {
		var back Artifact
		if err := json.Unmarshal([]byte(line), &back); err != nil {
			t.Fatalf("line %d does not unmarshal: %v", i, err)
		}
		if back.ID != arts[i].ID || back.Kind != arts[i].Kind {
			t.Errorf("line %d round-tripped to %+v", i, back)
		}
	}
	r, err := RendererFor("ndjson")
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := r(&again, arts); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("RendererFor(\"ndjson\") disagrees with RenderNDJSON")
	}
}

func TestStreamEncoderFlushes(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	enc := NewStreamEncoder(bw)
	if err := enc.Encode(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	// Without the encoder's flush the line would still sit in the 64 KiB
	// buffer; streaming consumers would see nothing.
	if got := buf.String(); got != "{\"x\":1}\n" {
		t.Errorf("buffered writer not flushed per line: %q", got)
	}
}
