// Package report renders experiment results as aligned text tables and data
// series, the textual equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Renderable is anything an experiment can produce.
type Renderable interface {
	// Render writes the artifact as text.
	Render(w io.Writer) error
	// Name returns the artifact's title.
	Name() string
}

// Table is a titled grid with a header row.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// NewTable builds an empty table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Name implements Renderable.
func (t *Table) Name() string { return t.Title }

// Render implements Renderable.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a titled set of named curves sharing an x axis — the textual
// form of one figure panel.
type Series struct {
	Title  string      `json:"title"`
	XLabel string      `json:"xLabel"`
	YLabel string      `json:"yLabel"`
	Names  []string    `json:"names"`
	X      []float64   `json:"x"`
	Y      [][]float64 `json:"y"` // Y[series][point]
	Notes  []string    `json:"notes,omitempty"`
}

// NewSeries builds an empty series set.
func NewSeries(title, xlabel, ylabel string, names ...string) *Series {
	s := &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Names: names}
	s.Y = make([][]float64, len(names))
	return s
}

// AddPoint appends one x position with one y value per curve.
func (s *Series) AddPoint(x float64, ys ...float64) {
	if len(ys) != len(s.Names) {
		panic(fmt.Sprintf("report: series %q wants %d values, got %d", s.Title, len(s.Names), len(ys)))
	}
	s.X = append(s.X, x)
	for i, y := range ys {
		s.Y[i] = append(s.Y[i], y)
	}
}

// AddNote appends a footnote.
func (s *Series) AddNote(format string, args ...any) {
	s.Notes = append(s.Notes, fmt.Sprintf(format, args...))
}

// Name implements Renderable.
func (s *Series) Name() string { return s.Title }

// Render implements Renderable.
func (s *Series) Render(w io.Writer) error {
	tbl := NewTable(fmt.Sprintf("%s   [y: %s]", s.Title, s.YLabel),
		append([]string{s.XLabel}, s.Names...)...)
	for i, x := range s.X {
		cells := []string{F(x, 4)}
		for j := range s.Names {
			cells = append(cells, F(s.Y[j][i], 4))
		}
		tbl.AddRow(cells...)
	}
	tbl.Notes = s.Notes
	return tbl.Render(w)
}

// F formats a float compactly with the given max precision.
func F(v float64, prec int) string {
	s := strconv.FormatFloat(v, 'f', prec, 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	if s == "-0" {
		s = "0"
	}
	return s
}
