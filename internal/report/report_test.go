package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("My Table", "a", "bbb")
	tbl.AddRow("1", "2")
	tbl.AddRow("longer", "x")
	tbl.AddNote("note %d", 7)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"My Table", "a", "bbb", "longer", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tbl.Name() != "My Table" {
		t.Errorf("Name = %q", tbl.Name())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("only")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tbl.Rows[0])
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Fig", "x", "energy", "a", "b")
	s.AddPoint(1, 0.5, 0.25)
	s.AddPoint(2, 1.5, 0.75)
	s.AddNote("hello")
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig", "energy", "0.5", "0.75", "hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if s.Name() != "Fig" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestSeriesArityPanics(t *testing.T) {
	s := NewSeries("Fig", "x", "y", "one")
	defer func() {
		if recover() == nil {
			t.Error("mismatched arity should panic")
		}
	}()
	s.AddPoint(1, 0.5, 0.7)
}

func TestFloatFormat(t *testing.T) {
	cases := map[float64]string{
		1.5:     "1.5",
		2.0:     "2",
		0.12345: "0.1235",
		-0.0:    "0",
		100:     "100",
	}
	for v, want := range cases {
		if got := F(v, 4); got != want {
			t.Errorf("F(%g) = %q, want %q", v, got, want)
		}
	}
}
