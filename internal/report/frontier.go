package report

// FrontierPoint is one non-dominated configuration on an energy-delay
// Pareto front, ready for rendering: a human-readable configuration label,
// its two axis values, and optional extra column values.
type FrontierPoint struct {
	// Label names the configuration, e.g. "GradualSleep K=12 @ p=0.05, 2 FUs".
	Label string `json:"label"`
	// Delay is the relative-delay axis (1.0 = the fastest baseline).
	Delay float64 `json:"delay"`
	// Energy is the relative-energy axis (E/E_base).
	Energy float64 `json:"energy"`
	// Extra holds additional per-point column values, matching the extra
	// column names passed to FrontierTable.
	Extra []string `json:"extra,omitempty"`
}

// FrontierTable renders a Pareto front as a table: one row per point in
// ascending-delay order, with any extra columns appended. Render the result
// through the usual text/JSON/CSV/NDJSON renderers via TableArtifact.
func FrontierTable(title string, extraCols []string, pts []FrontierPoint) *Table {
	cols := append([]string{"configuration", "delay", "E/E_base"}, extraCols...)
	t := NewTable(title, cols...)
	for _, p := range pts {
		row := append([]string{p.Label, F(p.Delay, 4), F(p.Energy, 4)}, p.Extra...)
		t.AddRow(row...)
	}
	return t
}

// FrontierSeries renders a Pareto front as a single energy-over-delay
// curve, the plottable form of the same data; point labels become notes so
// CSV/JSON consumers keep the configuration identities.
func FrontierSeries(title string, pts []FrontierPoint) *Series {
	s := NewSeries(title, "delay (relative)", "E/E_base", "frontier")
	for _, p := range pts {
		s.AddPoint(p.Delay, p.Energy)
		s.AddNote("delay %s: %s", F(p.Delay, 4), p.Label)
	}
	return s
}
