// Command sweep explores the energy-model parameter space from the command
// line: breakeven intervals, policy energies over closed-form scenarios,
// and GradualSleep slice counts. It needs no simulation and answers "which
// policy wins at my technology point?" interactively.
//
// Usage:
//
//	sweep -mode breakeven -alpha 0.5
//	sweep -mode policy -p 0.5 -usage 0.5 -idle 10
//	sweep -mode slices -p 0.05 -idle 20
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/archsim/fusleep"
)

func main() {
	mode := flag.String("mode", "breakeven", "breakeven | policy | slices")
	p := flag.Float64("p", 0.05, "leakage factor")
	alpha := flag.Float64("alpha", 0.5, "activity factor")
	usage := flag.Float64("usage", 0.5, "usage factor f_A")
	idle := flag.Float64("idle", 10, "mean idle interval, cycles")
	flag.Parse()

	tech := fusleep.DefaultTech().WithP(*p)
	switch *mode {
	case "breakeven":
		fmt.Printf("%-8s %-12s\n", "p", "breakeven")
		for pp := 0.05; pp <= 1.0001; pp += 0.05 {
			fmt.Printf("%-8.2f %-12.2f\n", pp, fusleep.DefaultTech().WithP(pp).Breakeven(*alpha))
		}
		fmt.Printf("\nat p=%.2f alpha=%.2f: breakeven %.2f cycles, recommended slices %d\n",
			*p, *alpha, tech.Breakeven(*alpha), tech.BreakevenSlices(*alpha))
	case "policy":
		s := fusleep.Scenario{TotalCycles: 1e6, Usage: *usage, MeanIdle: *idle, Alpha: *alpha}
		if err := s.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("p=%.2f usage=%.2f idle=%.1f alpha=%.2f\n", *p, *usage, *idle, *alpha)
		fmt.Printf("%-14s %-12s %-12s %-10s\n", "policy", "E/E_base", "leak frac", "vs best")
		best := 1e300
		vals := map[fusleep.Policy]float64{}
		for _, pol := range append(fusleep.Policies, fusleep.OracleMinimal) {
			e := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: pol}, s)
			rel := e.Total() / tech.BaseEnergy(*alpha, s.TotalCycles)
			vals[pol] = rel
			if rel < best {
				best = rel
			}
		}
		for _, pol := range append(fusleep.Policies, fusleep.OracleMinimal) {
			e := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: pol}, s)
			fmt.Printf("%-14s %-12.4f %-12.4f %+.1f%%\n", pol,
				vals[pol], e.LeakageFraction(), (vals[pol]/best-1)*100)
		}
	case "slices":
		s := fusleep.Scenario{TotalCycles: 1e6, Usage: *usage, MeanIdle: *idle, Alpha: *alpha}
		fmt.Printf("GradualSleep slice sweep at p=%.2f, mean idle %.1f\n", *p, *idle)
		fmt.Printf("%-8s %-12s\n", "K", "E/E_base")
		for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 1 << 16} {
			rel := tech.RelativeToBase(fusleep.PolicyConfig{Policy: fusleep.GradualSleep, Slices: k}, s)
			name := fmt.Sprintf("%d", k)
			if k >= 1<<16 {
				name = "inf"
			}
			fmt.Printf("%-8s %-12.4f\n", name, rel)
		}
		fmt.Printf("recommended (breakeven) slices: %d\n", tech.BreakevenSlices(*alpha))
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
