// Command sweep explores the energy-model parameter space from the command
// line: breakeven intervals, policy energies over closed-form scenarios,
// GradualSleep slice counts, and — via fusleep.Engine.Sweep — full
// simulated policy × technology × FU-count grids over the benchmark suite.
// Every mode emits structured artifacts renderable as text, JSON, or CSV.
//
// Usage:
//
//	sweep -mode breakeven -alpha 0.5
//	sweep -mode policy -p 0.5 -usage 0.5 -idle 10
//	sweep -mode slices -p 0.05 -idle 20
//	sweep -mode grid -grid-p 0.05,0.5 -grid-fus 2,4 -window 200000 -format csv
//	sweep -mode grid -grid-classes intalu,fpalu,fpmult \
//	    -grid-assign 'intalu=GradualSleep:slices=4,fpalu=MaxSleep,fpmult=MaxSleep'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/archsim/fusleep"
)

func main() {
	mode := flag.String("mode", "breakeven", "breakeven | policy | slices | grid")
	p := flag.Float64("p", 0.05, "leakage factor")
	alpha := flag.Float64("alpha", 0.5, "activity factor")
	usage := flag.Float64("usage", 0.5, "usage factor f_A")
	idle := flag.Float64("idle", 10, "mean idle interval, cycles")
	gridP := flag.String("grid-p", "", "grid mode: leakage factors, comma-separated (default: the -p value)")
	gridFUs := flag.String("grid-fus", "0", "grid mode: FU counts, comma-separated (0 = paper counts)")
	gridClasses := flag.String("grid-classes", "", "grid mode: FU classes to account, comma-separated (intalu,agu,mult,fpalu,fpmult; default: intalu)")
	gridAssign := flag.String("grid-assign", "", "grid mode: per-class policy assignments, semicolon-separated; each is class=Policy[:slices=K][:timeout=T] terms, e.g. 'intalu=GradualSleep:slices=4,fpalu=MaxSleep;intalu=SleepTimeout'")
	gridAGUs := flag.String("grid-agus", "0", "grid mode: dedicated AGU counts, comma-separated (0 = shared with IntALUs)")
	gridMults := flag.String("grid-mults", "0", "grid mode: multiplier unit counts, comma-separated (0 = default 1)")
	gridFPALUs := flag.String("grid-fpalus", "0", "grid mode: FP adder unit counts, comma-separated (0 = default 1)")
	gridFPMults := flag.String("grid-fpmults", "0", "grid mode: FP multiplier unit counts, comma-separated (0 = default 1)")
	window := flag.Uint64("window", 250_000, "grid mode: instruction window per benchmark")
	format := flag.String("format", "text", "output format: "+strings.Join(fusleep.Formats(), " | "))
	flag.Parse()

	render, err := fusleep.RendererFor(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -format: %v\n", err)
		os.Exit(2)
	}

	tech := fusleep.DefaultTech().WithP(*p)
	var arts []fusleep.Artifact
	switch *mode {
	case "breakeven":
		s := fusleep.NewSeries(
			fmt.Sprintf("Breakeven idle interval vs leakage factor (alpha=%.2f)", *alpha),
			"p", "breakeven (cycles)", "breakeven")
		for pp := 0.05; pp <= 1.0001; pp += 0.05 {
			s.AddPoint(pp, fusleep.DefaultTech().WithP(pp).Breakeven(*alpha))
		}
		s.AddNote("at p=%.2f alpha=%.2f: breakeven %.2f cycles, recommended slices %d",
			*p, *alpha, tech.Breakeven(*alpha), tech.BreakevenSlices(*alpha))
		arts = append(arts, fusleep.SeriesArtifact("breakeven", s))
	case "policy":
		s := fusleep.Scenario{TotalCycles: 1e6, Usage: *usage, MeanIdle: *idle, Alpha: *alpha}
		if err := s.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t := fusleep.NewTable(
			fmt.Sprintf("Policy energies: p=%.2f usage=%.2f idle=%.1f alpha=%.2f", *p, *usage, *idle, *alpha),
			"policy", "E/E_base", "leak frac", "vs best")
		pols := append(fusleep.Policies, fusleep.OracleMinimal)
		best := 1e300
		vals := map[fusleep.Policy]float64{}
		for _, pol := range pols {
			e := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: pol}, s)
			rel := e.Total() / tech.BaseEnergy(*alpha, s.TotalCycles)
			vals[pol] = rel
			if rel < best {
				best = rel
			}
		}
		for _, pol := range pols {
			e := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: pol}, s)
			t.AddRow(pol.String(), fmt.Sprintf("%.4f", vals[pol]),
				fmt.Sprintf("%.4f", e.LeakageFraction()),
				fmt.Sprintf("%+.1f%%", (vals[pol]/best-1)*100))
		}
		arts = append(arts, fusleep.TableArtifact("policy", t))
	case "slices":
		s := fusleep.Scenario{TotalCycles: 1e6, Usage: *usage, MeanIdle: *idle, Alpha: *alpha}
		t := fusleep.NewTable(
			fmt.Sprintf("GradualSleep slice sweep at p=%.2f, mean idle %.1f", *p, *idle),
			"K", "E/E_base")
		for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 1 << 16} {
			rel := tech.RelativeToBase(fusleep.PolicyConfig{Policy: fusleep.GradualSleep, Slices: k}, s)
			name := fmt.Sprintf("%d", k)
			if k >= 1<<16 {
				name = "inf"
			}
			t.AddRow(name, fmt.Sprintf("%.4f", rel))
		}
		t.AddNote("recommended (breakeven) slices: %d", tech.BreakevenSlices(*alpha))
		arts = append(arts, fusleep.TableArtifact("slices", t))
	case "grid":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fus, err := parseInts(*gridFUs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// With no -grid-p the grid falls back to the engine's technology,
		// i.e. the -p flag.
		var techs []fusleep.Tech
		if *gridP != "" {
			ps, err := parseFloats(*gridP)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			for _, pp := range ps {
				techs = append(techs, fusleep.DefaultTech().WithP(pp))
			}
		}
		eng := fusleep.NewEngine(fusleep.WithWindow(*window), fusleep.WithTech(tech))
		grid := fusleep.Grid{Techs: techs, FUCounts: fus, Alpha: *alpha, Window: *window}
		if grid.Classes, err = fusleep.ParseFUClasses(*gridClasses); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *gridAssign != "" {
			for _, term := range strings.Split(*gridAssign, ";") {
				a, err := fusleep.ParseAssignment(term)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				if a != nil {
					grid.Assignments = append(grid.Assignments, a)
				}
			}
		}
		for _, axis := range []struct {
			dst  *[]int
			flag string
		}{
			{&grid.AGUCounts, *gridAGUs},
			{&grid.MultCounts, *gridMults},
			{&grid.FPALUCounts, *gridFPALUs},
			{&grid.FPMultCounts, *gridFPMults},
		} {
			if *axis.dst, err = parseInts(axis.flag); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		// Stream cell by cell so an interrupt mid-sweep still flushes the
		// cells that finished instead of discarding them with the error.
		total := len(eng.Cells(grid))
		t := eng.NewSweepTable(grid)
		classAware := grid.ClassAware()
		var ct *fusleep.Table
		if classAware {
			ct = eng.NewClassSweepTable(grid)
		}
		done := 0
		err = eng.SweepStream(ctx, grid, func(res fusleep.CellResult) error {
			fusleep.AddSweepRow(t, res)
			if classAware {
				fusleep.AddClassRows(ct, res)
			}
			done++
			return nil
		})
		flush := func() []fusleep.Artifact {
			out := []fusleep.Artifact{fusleep.TableArtifact("sweep", t)}
			if classAware {
				out = append(out, fusleep.TableArtifact("sweep-classes", ct))
			}
			return out
		}
		if err != nil {
			if done > 0 {
				// Flush the completed cells before reporting the failure.
				t.AddNote("PARTIAL: %d of %d cells completed before: %v", done, total, err)
				if rerr := render(os.Stdout, flush()); rerr != nil {
					fmt.Fprintln(os.Stderr, rerr)
				}
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Same provenance note Engine.Sweep's batch artifact carries.
		if cells := eng.Cells(grid); len(cells) > 0 {
			t.AddNote("E/E_base averaged over %d benchmarks at window %d",
				len(cells[0].Benchmarks), cells[0].Window)
		}
		arts = append(arts, flush()...)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if err := render(os.Stdout, arts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
