// Command fusleep regenerates the tables and figures of Dropsho et al.,
// "Managing Static Leakage Energy in Microprocessor Functional Units"
// (MICRO 2002), through the fusleep.Engine API: one long-lived engine
// shares suite simulations across the selected experiments, and results
// are structured artifacts renderable as text, JSON, or CSV.
//
// Usage:
//
//	fusleep -list                           # show available experiments
//	fusleep -exp fig8a                      # one experiment
//	fusleep -exp fig7,fig8a,fig8b           # several (simulations are shared)
//	fusleep -exp all -window 2000000        # full run at a larger window
//	fusleep -exp fig8a -format json         # machine-readable artifacts
//	fusleep -exp all -format csv -timeout 10m
//
// Interrupting the process (SIGINT/SIGTERM) cancels in-flight simulations
// promptly via context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/archsim/fusleep"
)

func main() {
	exp := flag.String("exp", "", "experiment id(s), comma-separated, or 'all'")
	list := flag.Bool("list", false, "list experiments")
	window := flag.Uint64("window", 1_000_000, "instruction window per benchmark")
	sweep := flag.Uint64("sweep", 750_000, "instruction window per Table 3 sweep run")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = suite size)")
	format := flag.String("format", "text", "output format: "+strings.Join(fusleep.Formats(), " | "))
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	flag.Parse()

	// Validate the format before any other mode handling, so a typo fails
	// fast with the accepted format list instead of surfacing after (or
	// silently bypassing) a long run.
	render, err := fusleep.RendererFor(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -format: %v\n", err)
		os.Exit(2)
	}

	if *list || *exp == "" {
		fmt.Println("Experiments served by fusleep.Engine.RunExperiments:")
		fmt.Printf("%-15s %-10s %-4s %s\n", "id", "paper", "sim", "description")
		for _, e := range fusleep.Experiments() {
			sim := ""
			if e.Simulated {
				sim = "yes"
			}
			fmt.Printf("%-15s %-10s %-4s %s\n", e.ID, e.Paper, sim, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect experiments with -exp <id>[,<id>...] or -exp all")
			fmt.Fprintf(os.Stderr, "render with -format %s; ^C cancels cleanly\n", strings.Join(fusleep.Formats(), "|"))
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng := fusleep.NewEngine(
		fusleep.WithWindow(*window),
		fusleep.WithSweep(*sweep),
		fusleep.WithParallelism(*parallel),
	)

	var ids []string
	if *exp == "all" {
		for _, e := range fusleep.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	start := time.Now()
	if *format == "text" {
		// Text streams experiment by experiment, so long runs show progress
		// and a late failure doesn't discard finished output.
		n := 0
		for _, id := range ids {
			arts, err := eng.RunExperiments(ctx, id)
			if err != nil {
				// Everything rendered so far already reached stdout; say so
				// instead of silently abandoning the partial output.
				if n > 0 {
					fmt.Fprintf(os.Stderr, "%d artifact(s) flushed before the failure\n", n)
				}
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := render(os.Stdout, arts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			n += len(arts)
		}
		fmt.Fprintf(os.Stderr, "%d artifact(s) in %v\n", n, time.Since(start).Round(time.Millisecond))
		return
	}
	// Machine formats are atomic: one JSON array / CSV document.
	arts, err := eng.RunExperiments(ctx, ids...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := render(os.Stdout, arts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
