// Command fusleep regenerates the tables and figures of Dropsho et al.,
// "Managing Static Leakage Energy in Microprocessor Functional Units"
// (MICRO 2002).
//
// Usage:
//
//	fusleep -list                 # show available experiments
//	fusleep -exp fig8a            # one experiment
//	fusleep -exp fig7,fig8a,fig8b # several (suite simulations are shared)
//	fusleep -exp all -window 2000000 | tee results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/archsim/fusleep"
)

func main() {
	exp := flag.String("exp", "", "experiment id(s), comma-separated, or 'all'")
	list := flag.Bool("list", false, "list experiments")
	window := flag.Uint64("window", 1_000_000, "instruction window per benchmark")
	sweep := flag.Uint64("sweep", 750_000, "instruction window per Table 3 sweep run")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Printf("%-15s %-10s %-4s %s\n", "id", "paper", "sim", "description")
		for _, e := range fusleep.Experiments() {
			sim := ""
			if e.Simulated {
				sim = "yes"
			}
			fmt.Printf("%-15s %-10s %-4s %s\n", e.ID, e.Paper, sim, e.Desc)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect experiments with -exp <id>[,<id>...] or -exp all")
		}
		return
	}

	opts := fusleep.ExperimentOptions{Window: *window, Sweep: *sweep}
	if *exp == "all" {
		if err := fusleep.RunAll(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	ids := strings.Split(*exp, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := fusleep.RunExperiments(ids, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
