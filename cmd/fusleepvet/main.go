// Command fusleepvet is the multichecker for the repo's domain invariants.
// It loads the packages matching its argument patterns through the go tool,
// runs the five analyzers — detrange, detsource, hotalloc, ctxflow,
// metricnames — over
// each package they apply to, and prints findings as file:line: analyzer:
// message. It exits 2 when any diagnostic is reported, 1 on load errors,
// and 0 on a clean tree, so CI can fail on regressions:
//
//	go run ./cmd/fusleepvet ./...
//
// Select a subset of analyzers with -checks:
//
//	go run ./cmd/fusleepvet -checks=detrange,hotalloc ./internal/pipeline
//
// See internal/analysis for the invariants each analyzer enforces and the
// //fusleepvet: directives that scope or suppress them.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/archsim/fusleep/internal/analysis"
	"github.com/archsim/fusleep/internal/analysis/ctxflow"
	"github.com/archsim/fusleep/internal/analysis/detrange"
	"github.com/archsim/fusleep/internal/analysis/detsource"
	"github.com/archsim/fusleep/internal/analysis/hotalloc"
	"github.com/archsim/fusleep/internal/analysis/metricnames"
)

// all is the registry of every analyzer this binary knows, in report order.
var all = []*analysis.Analyzer{
	detrange.Analyzer,
	detsource.Analyzer,
	hotalloc.Analyzer,
	ctxflow.Analyzer,
	metricnames.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusleepvet:", err)
		os.Exit(1)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusleepvet:", err)
		os.Exit(1)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusleepvet:", err)
		os.Exit(1)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, selected)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusleepvet:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "fusleepvet: %d finding(s)\n", found)
		os.Exit(2)
	}
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(all))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fusleepvet [-checks=a,b] [packages]\n\nAnalyzers:\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}
