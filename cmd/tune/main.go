// Command tune runs the Pareto-aware policy auto-tuner from the command
// line: instead of exhaustively sweeping the policy × parameter ×
// technology × FU-count grid, it searches the space with adaptive grid
// refinement and successive halving, streaming probe progress to stderr
// and rendering the best point and the energy-delay Pareto frontier as
// structured artifacts.
//
// Usage:
//
//	tune                                         # E·D over the default space
//	tune -objective leakage -slowdown-cap 1.1    # min leakage, bounded delay
//	tune -policies SleepTimeout,GradualSleep -timeout-range 1:512
//	tune -fus 2,4 -p 0.05,0.5 -benchmarks gcc,mcf -window 200000
//	tune -max-evals 96 -rounds 6 -format json
//	tune -classes intalu,fpalu,fpmult -max-evals 128   # per-class assignments
//	tune -classes intalu,agu -agus 2                   # dedicated AGU pool
//
// Interrupting the process (SIGINT/SIGTERM) cancels in-flight simulations
// promptly via context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/archsim/fusleep"
)

func main() {
	objective := flag.String("objective", "ed", "objective: ed | ed2 | leakage")
	slowdownCap := flag.Float64("slowdown-cap", 0, "max relative delay (0 = unconstrained)")
	policies := flag.String("policies", "", "policy families to search, comma-separated (default: all causal policies)")
	timeoutRange := flag.String("timeout-range", "", "SleepTimeout threshold range lo:hi (default 1:256)")
	slicesRange := flag.String("slices-range", "", "GradualSleep K range lo:hi (default 1:128)")
	fus := flag.String("fus", "0", "FU counts, comma-separated (0 = paper counts)")
	classes := flag.String("classes", "", "FU classes to assign policies over, comma-separated (intalu,agu,mult,fpalu,fpmult); widens the search to per-class assignments with a final composition round")
	agus := flag.Int("agus", 0, "dedicated AGU count (0 = shared with IntALUs; required > 0 to search the agu class)")
	mults := flag.Int("mults", 0, "multiplier unit count (0 = default 1)")
	fpalus := flag.Int("fpalus", 0, "FP adder unit count (0 = default 1)")
	fpmults := flag.Int("fpmults", 0, "FP multiplier unit count (0 = default 1)")
	ps := flag.String("p", "", "leakage factors, comma-separated (default: the paper's p=0.05)")
	benchmarks := flag.String("benchmarks", "", "benchmark subset, comma-separated (default: all nine)")
	alpha := flag.Float64("alpha", 0.5, "activity factor")
	window := flag.Uint64("window", 250_000, "instruction window per benchmark")
	maxEvals := flag.Int("max-evals", 64, "cell evaluation budget")
	rounds := flag.Int("rounds", 4, "refinement rounds after the seed round")
	parallel := flag.Int("parallel", 0, "max concurrent cell evaluations (0 = tuner default)")
	quiet := flag.Bool("quiet", false, "suppress per-probe progress on stderr")
	format := flag.String("format", "text", "output format: "+strings.Join(fusleep.Formats(), " | "))
	flag.Parse()

	render, err := fusleep.RendererFor(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "invalid -format: %v\n", err)
		os.Exit(2)
	}
	kind, err := fusleep.ParseTuneObjective(*objective)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	space := fusleep.TuneSpace{
		Alpha: *alpha, Window: *window,
		AGUs: *agus, Mults: *mults, FPALUs: *fpalus, FPMults: *fpmults,
	}
	if space.Classes, err = fusleep.ParseFUClasses(*classes); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *policies != "" {
		for _, name := range strings.Split(*policies, ",") {
			p, err := fusleep.ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			space.Policies = append(space.Policies, p)
		}
	}
	if space.TimeoutRange, err = parseRange(*timeoutRange); err != nil {
		fmt.Fprintf(os.Stderr, "-timeout-range: %v\n", err)
		os.Exit(2)
	}
	if space.SlicesRange, err = parseRange(*slicesRange); err != nil {
		fmt.Fprintf(os.Stderr, "-slices-range: %v\n", err)
		os.Exit(2)
	}
	if space.FUCounts, err = parseInts(*fus); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *ps != "" {
		vals, err := parseFloats(*ps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, p := range vals {
			space.Techs = append(space.Techs, fusleep.DefaultTech().WithP(p))
		}
	}
	if *benchmarks != "" {
		for _, b := range strings.Split(*benchmarks, ",") {
			space.Benchmarks = append(space.Benchmarks, strings.TrimSpace(b))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng := fusleep.NewEngine(fusleep.WithWindow(*window))
	opts := []fusleep.TuneOption{
		fusleep.WithTuneSpace(space),
		fusleep.WithTuneObjective(fusleep.TuneObjective{Kind: kind, SlowdownCap: *slowdownCap}),
		fusleep.WithTuneBudget(*maxEvals),
		fusleep.WithTuneRounds(*rounds),
		fusleep.WithTuneParallelism(*parallel),
	}

	start := time.Now()
	observe := func(p fusleep.TuneProbe) error {
		if *quiet {
			return nil
		}
		mark := " "
		switch {
		case p.Improved:
			mark = "*"
		case p.Accepted:
			mark = "+"
		}
		fmt.Fprintf(os.Stderr, "%s probe %3d r%d  %-40s score %.4f  D %.3f  E %.4f\n",
			mark, p.Seq, p.Round, p.Point.Label(), p.Point.Score, p.Point.Delay, p.Point.Energy)
		return nil
	}
	res, err := eng.OptimizeStream(ctx, observe, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stats := eng.Stats()
	fmt.Fprintf(os.Stderr, "%d cells in %d rounds, %d pipeline runs (cache hit rate %.0f%%), %v\n",
		res.Evals, res.Rounds, stats.Simulations, 100*stats.HitRate(),
		time.Since(start).Round(time.Millisecond))

	if err := render(os.Stdout, fusleep.TuneArtifacts(res)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseRange parses "lo:hi" into an inclusive integer range.
func parseRange(s string) ([2]int, error) {
	if s == "" {
		return [2]int{}, nil
	}
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return [2]int{}, fmt.Errorf("want lo:hi, got %q", s)
	}
	l, err := strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return [2]int{}, fmt.Errorf("bad int %q: %w", lo, err)
	}
	h, err := strconv.Atoi(strings.TrimSpace(hi))
	if err != nil {
		return [2]int{}, fmt.Errorf("bad int %q: %w", hi, err)
	}
	if l < 1 || h < l {
		return [2]int{}, fmt.Errorf("bad range [%d, %d]", l, h)
	}
	return [2]int{l, h}, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad int %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
