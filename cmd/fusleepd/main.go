// Command fusleepd serves sleep-policy design-space sweeps over HTTP: a
// long-lived fusleep.Engine behind a sharded, bounded job queue. Clients
// submit policy × technology × FU-count grids, stream per-cell results back
// as NDJSON while the sweep runs, and identical cells — across requests and
// across clients — deduplicate through the engine's simulation cache.
//
// Usage:
//
//	fusleepd -addr :8080
//	fusleepd -addr :8080 -shards 8 -queue 256 -window 500000 -parallel 4
//	fusleepd -addr :8080 -store-dir /var/lib/fusleepd -cell-timeout 30s -max-retries 2
//	fusleepd -role coordinator -addr :8080 -store-dir /var/lib/fusleepd
//	fusleepd -role worker -coordinator http://coord:8080 -worker-parallel 4
//
// # Roles
//
// The daemon runs in one of three roles (-role):
//
//   - standalone (default): the single-process daemon — intake, queueing,
//     and evaluation in one binary. Behavior is identical to releases that
//     predate the fleet.
//   - coordinator: owns job intake, the WAL, and the content-addressed
//     result store, but evaluates nothing itself. Cells route to registered
//     workers by rendezvous hashing; a worker that crashes or partitions
//     has its leased cells requeued to the survivors, and already-reported
//     cells replay for free from the store.
//   - worker: a listener-less evaluation process. It dials the coordinator
//     (-coordinator), registers, long-polls for leased cells, evaluates
//     them through the same executor the standalone daemon embeds, and
//     reports the results. Workers may join and leave at any time.
//
// With -store-dir the daemon is crash-safe: accepted jobs are fsynced to a
// write-ahead log before they are acknowledged, completed cells are
// journaled under their content-addressed configuration hash, and a
// restart over the same directory replays every unfinished job — serving
// its already-journaled cells from disk and recomputing only what the
// crash lost. -cell-timeout bounds a single cell evaluation (0 disables
// the deadline); -max-retries retries transiently failing cells with
// deterministically jittered exponential backoff.
//
// Endpoints (see API.md for the full contract):
//
//	POST   /v1/sweeps          submit a sweep grid (429 + Retry-After when full)
//	GET    /v1/sweeps/{id}     stream per-cell NDJSON results (?poll=1 snapshots)
//	DELETE /v1/sweeps/{id}     cancel a sweep
//	POST   /v1/optimize        submit a Pareto-aware tuner run
//	GET    /v1/optimize/{id}   stream per-probe NDJSON results (?poll=1 snapshots)
//	DELETE /v1/optimize/{id}   cancel a tuner run
//	GET    /v1/jobs            every retained job, sweeps and tunes alike
//	GET    /v1/jobs/{id}       stream or poll either job kind
//	DELETE /v1/jobs/{id}       cancel either job kind
//	GET    /v1/workloads       registered benchmarks
//	GET    /v1/policies        registered sleep policies and their knobs
//	GET    /v1/classes         functional-unit classes
//	POST   /v1/fleet/...       worker wire protocol (coordinator role)
//	GET    /v1/fleet/workers   live fleet membership (coordinator role)
//	GET    /healthz            liveness (503 while draining)
//	GET    /readyz             readiness (503 while draining, recovering, or shedding)
//	GET    /metrics            Prometheus text exposition: counters, gauges, histograms
//	GET    /v1/jobs/{id}/trace per-cell lifecycle span timeline (NDJSON)
//	GET    /debug/pprof/...    runtime profiles (with -pprof)
//
// Observability: -log-level and -log-format select the structured log's
// threshold and encoding (text or json); every line carries the job, cell
// key, and worker involved. /metrics includes latency histograms (cell
// evaluation, HTTP requests by route, queue wait, fleet round trips, retry
// backoff, journal appends) alongside the counters, and each job keeps a
// bounded in-memory trace of its cells' lifecycle stages, served by
// /v1/jobs/{id}/trace.
//
// On SIGTERM/SIGINT the daemon stops accepting sweeps, drains every queued
// and in-flight cell (bounded by -drain-timeout), finishes open response
// streams, and exits. A drain that exceeds its deadline aborts the
// remaining jobs; with -store-dir those stay pending in the WAL and the
// next start resumes them. A worker sends a goodbye on shutdown so the
// coordinator requeues its outstanding cells immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/server"
	"github.com/archsim/fusleep/internal/store"
	"github.com/archsim/fusleep/internal/telemetry"
)

// newLogger builds the daemon's structured logger from the -log-level and
// -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address (standalone and coordinator roles)")
	role := flag.String("role", "standalone", `daemon role: "standalone", "coordinator", or "worker"`)
	shards := flag.Int("shards", 0, "worker shards (0 = min(GOMAXPROCS, 8); standalone role)")
	queue := flag.Int("queue", 128, "pending cells per shard")
	maxCells := flag.Int("max-cells", 4096, "largest accepted sweep, in cells")
	window := flag.Uint64("window", 1_000_000, "default instruction window per benchmark")
	maxWindow := flag.Uint64("max-window", 10_000_000, "largest accepted per-request window")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = suite size)")
	cache := flag.Bool("cache", true, "enable the cross-request simulation cache")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to drain in-flight cells on shutdown")
	storeDir := flag.String("store-dir", "", "durable store directory: result journal + job WAL (empty = in-memory only)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell evaluation deadline (0 = none)")
	maxRetries := flag.Int("max-retries", 2, "additional attempts for transiently failing cells")
	syncEvery := flag.Int("sync-every", 1, "fsync the result journal every n appends (1 = every result durable)")
	coordURL := flag.String("coordinator", "http://localhost:8080", "coordinator base URL (worker role)")
	workerName := flag.String("worker-name", "", "worker label sent at registration (worker role; default hostname)")
	workerTTL := flag.Duration("worker-ttl", 10*time.Second, "heartbeat lease before a silent worker is expired (coordinator role)")
	fleetQueue := flag.Int("fleet-queue", 64, "queued cells per worker before dispatch blocks (coordinator role)")
	workerParallel := flag.Int("worker-parallel", 0, "concurrent cell evaluations (0 = GOMAXPROCS; worker role)")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug, info, warn, or error")
	logFormat := flag.String("log-format", "text", `structured log encoding: "text" or "json"`)
	pprofOn := flag.Bool("pprof", false, "mount runtime profiles under /debug/pprof/ (standalone and coordinator roles)")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fusleepd: %v\n", err)
		os.Exit(2)
	}

	switch *role {
	case "standalone", "coordinator":
	case "worker":
		runWorker(*coordURL, *workerName, *window, *parallel, *cache,
			*cellTimeout, *maxRetries, *workerParallel, logger)
		return
	default:
		fmt.Fprintf(os.Stderr, "fusleepd: unknown -role %q (want standalone, coordinator, or worker)\n", *role)
		os.Exit(2)
	}

	engOpts := []fusleep.Option{
		fusleep.WithWindow(*window),
		fusleep.WithParallelism(*parallel),
		fusleep.WithCache(*cache),
	}
	// One registry serves the whole daemon: the server's metrics and the
	// store's append-latency histogram render in a single /metrics scrape.
	reg := telemetry.NewRegistry()
	appendSeconds := reg.NewHistogramVec("fusleepd_store_append_seconds",
		"Durable journal append latency by journal (results or jobs).", nil, "journal")

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{
			SyncEvery: *syncEvery,
			Observe:   func(op string, s float64) { appendSeconds.With(op).Observe(s) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusleepd: open store: %v\n", err)
			os.Exit(1)
		}
		if rs := st.Results.Stats(); rs.Recovered > 0 || rs.TruncatedBytes > 0 {
			logger.Info("store recovered", "dir", *storeDir,
				"results", rs.Recovered, "tornBytes", rs.TruncatedBytes)
		}
		engOpts = append(engOpts, fusleep.WithResultStore(st.Results))
	}

	eng := fusleep.NewEngine(engOpts...)
	cfg := server.Config{
		Engine:      eng,
		Shards:      *shards,
		QueueDepth:  *queue,
		MaxCells:    *maxCells,
		MaxWindow:   *maxWindow,
		CellTimeout: *cellTimeout,
		MaxRetries:  *maxRetries,
		Registry:    reg,
		Logger:      logger,
		Pprof:       *pprofOn,
	}
	if st != nil {
		cfg.Results = st.Results
		cfg.Jobs = st.Jobs
	}
	if *role == "coordinator" {
		cfg.Fleet = fleet.NewCoordinator(fleet.Config{
			QueueDepth: *fleetQueue,
			WorkerTTL:  *workerTTL,
		})
	}
	srv := server.New(cfg)
	if replayed, err := srv.Recover(); err != nil {
		logger.Error("recovery failed", "err", err)
	} else if replayed > 0 {
		logger.Info("replayed unfinished jobs from the WAL", "jobs", replayed)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("fusleepd listening", "addr", *addr, "role", *role)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting sweeps, finish queued and in-flight
	// cells, then close the listener once open streams have delivered the
	// final events.
	logger.Info("draining in-flight cells")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	if st != nil {
		if err := st.Close(); err != nil {
			logger.Warn("close store", "err", err)
		}
	}
	logger.Info("fusleepd bye")
}

// runWorker is the -role=worker entry point: no listener, no store — just
// an engine behind the fleet's fetch/evaluate/report loop until SIGTERM.
func runWorker(coordinator, name string, window uint64, parallel int, cache bool,
	cellTimeout time.Duration, maxRetries, workerParallel int, logger *slog.Logger) {
	if name == "" {
		name, _ = os.Hostname()
	}
	if workerParallel <= 0 {
		workerParallel = runtime.GOMAXPROCS(0)
	}
	logger = logger.With("worker", name)
	eng := fusleep.NewEngine(
		fusleep.WithWindow(window),
		fusleep.WithParallelism(parallel),
		fusleep.WithCache(cache),
	)
	w := &fleet.Worker{
		Coordinator: coordinator,
		Name:        name,
		Exec: &fleet.Executor{
			Engine:      eng,
			CellTimeout: cellTimeout,
			Retry: fleet.RetryPolicy{
				MaxRetries: maxRetries,
				Seed:       0x66_75_73_6c_65_65_70, // "fusleep": match the server's jitter
			},
		},
		Parallel: workerParallel,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("worker dialing coordinator", "coordinator", coordinator, "parallel", workerParallel)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("worker exiting on error", "err", err)
		os.Exit(1)
	}
	logger.Info("worker bye")
}
