// Command fusleepd serves sleep-policy design-space sweeps over HTTP: a
// long-lived fusleep.Engine behind a sharded, bounded job queue. Clients
// submit policy × technology × FU-count grids, stream per-cell results back
// as NDJSON while the sweep runs, and identical cells — across requests and
// across clients — deduplicate through the engine's simulation cache.
//
// Usage:
//
//	fusleepd -addr :8080
//	fusleepd -addr :8080 -shards 8 -queue 256 -window 500000 -parallel 4
//	fusleepd -addr :8080 -store-dir /var/lib/fusleepd -cell-timeout 30s -max-retries 2
//
// With -store-dir the daemon is crash-safe: accepted jobs are fsynced to a
// write-ahead log before they are acknowledged, completed cells are
// journaled under their content-addressed configuration hash, and a
// restart over the same directory replays every unfinished job — serving
// its already-journaled cells from disk and recomputing only what the
// crash lost. -cell-timeout bounds a single cell evaluation (0 disables
// the deadline); -max-retries retries transiently failing cells with
// deterministically jittered exponential backoff.
//
// Endpoints (see internal/server for the contract):
//
//	POST   /v1/sweeps          submit a sweep grid (429 + Retry-After when full)
//	GET    /v1/sweeps/{id}     stream per-cell NDJSON results (?poll=1 snapshots)
//	DELETE /v1/sweeps/{id}     cancel a sweep
//	POST   /v1/optimize        submit a Pareto-aware tuner run
//	GET    /v1/optimize/{id}   stream per-probe NDJSON results (?poll=1 snapshots)
//	DELETE /v1/optimize/{id}   cancel a tuner run
//	GET    /v1/workloads       registered benchmarks
//	GET    /v1/policies        registered sleep policies and their knobs
//	GET    /healthz            liveness (503 while draining)
//	GET    /readyz             readiness (503 while draining, recovering, or shedding)
//	GET    /metrics            Prometheus-style metrics
//
// On SIGTERM/SIGINT the daemon stops accepting sweeps, drains every queued
// and in-flight cell (bounded by -drain-timeout), finishes open response
// streams, and exits. A drain that exceeds its deadline aborts the
// remaining jobs; with -store-dir those stay pending in the WAL and the
// next start resumes them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/server"
	"github.com/archsim/fusleep/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "worker shards (0 = min(GOMAXPROCS, 8))")
	queue := flag.Int("queue", 128, "pending cells per shard")
	maxCells := flag.Int("max-cells", 4096, "largest accepted sweep, in cells")
	window := flag.Uint64("window", 1_000_000, "default instruction window per benchmark")
	maxWindow := flag.Uint64("max-window", 10_000_000, "largest accepted per-request window")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = suite size)")
	cache := flag.Bool("cache", true, "enable the cross-request simulation cache")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to drain in-flight cells on shutdown")
	storeDir := flag.String("store-dir", "", "durable store directory: result journal + job WAL (empty = in-memory only)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell evaluation deadline (0 = none)")
	maxRetries := flag.Int("max-retries", 2, "additional attempts for transiently failing cells")
	syncEvery := flag.Int("sync-every", 1, "fsync the result journal every n appends (1 = every result durable)")
	flag.Parse()

	engOpts := []fusleep.Option{
		fusleep.WithWindow(*window),
		fusleep.WithParallelism(*parallel),
		fusleep.WithCache(*cache),
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{SyncEvery: *syncEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusleepd: open store: %v\n", err)
			os.Exit(1)
		}
		if rs := st.Results.Stats(); rs.Recovered > 0 || rs.TruncatedBytes > 0 {
			fmt.Fprintf(os.Stderr, "fusleepd: store %s: %d results recovered (%d torn bytes dropped)\n",
				*storeDir, rs.Recovered, rs.TruncatedBytes)
		}
		engOpts = append(engOpts, fusleep.WithResultStore(st.Results))
	}

	eng := fusleep.NewEngine(engOpts...)
	cfg := server.Config{
		Engine:      eng,
		Shards:      *shards,
		QueueDepth:  *queue,
		MaxCells:    *maxCells,
		MaxWindow:   *maxWindow,
		CellTimeout: *cellTimeout,
		MaxRetries:  *maxRetries,
	}
	if st != nil {
		cfg.Results = st.Results
		cfg.Jobs = st.Jobs
	}
	srv := server.New(cfg)
	if replayed, err := srv.Recover(); err != nil {
		fmt.Fprintf(os.Stderr, "fusleepd: recovery: %v\n", err)
	} else if replayed > 0 {
		fmt.Fprintf(os.Stderr, "fusleepd: replayed %d unfinished job(s) from the WAL\n", replayed)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fusleepd listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting sweeps, finish queued and in-flight
	// cells, then close the listener once open streams have delivered the
	// final events.
	fmt.Fprintln(os.Stderr, "fusleepd: draining in-flight cells...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fusleepd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fusleepd: shutdown: %v\n", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fusleepd: close store: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "fusleepd: bye")
}
