// Command fusleepd serves sleep-policy design-space sweeps over HTTP: a
// long-lived fusleep.Engine behind a sharded, bounded job queue. Clients
// submit policy × technology × FU-count grids, stream per-cell results back
// as NDJSON while the sweep runs, and identical cells — across requests and
// across clients — deduplicate through the engine's simulation cache.
//
// Usage:
//
//	fusleepd -addr :8080
//	fusleepd -addr :8080 -shards 8 -queue 256 -window 500000 -parallel 4
//
// Endpoints (see internal/server for the contract):
//
//	POST   /v1/sweeps          submit a sweep grid
//	GET    /v1/sweeps/{id}     stream per-cell NDJSON results (?poll=1 snapshots)
//	DELETE /v1/sweeps/{id}     cancel a sweep
//	POST   /v1/optimize        submit a Pareto-aware tuner run
//	GET    /v1/optimize/{id}   stream per-probe NDJSON results (?poll=1 snapshots)
//	DELETE /v1/optimize/{id}   cancel a tuner run
//	GET    /v1/workloads       registered benchmarks
//	GET    /v1/policies        registered sleep policies and their knobs
//	GET    /healthz            liveness (503 while draining)
//	GET    /metrics            Prometheus-style metrics
//
// On SIGTERM/SIGINT the daemon stops accepting sweeps, drains every queued
// and in-flight cell (bounded by -drain-timeout), finishes open response
// streams, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "worker shards (0 = min(GOMAXPROCS, 8))")
	queue := flag.Int("queue", 128, "pending cells per shard")
	maxCells := flag.Int("max-cells", 4096, "largest accepted sweep, in cells")
	window := flag.Uint64("window", 1_000_000, "default instruction window per benchmark")
	maxWindow := flag.Uint64("max-window", 10_000_000, "largest accepted per-request window")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = suite size)")
	cache := flag.Bool("cache", true, "enable the cross-request simulation cache")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to drain in-flight cells on shutdown")
	flag.Parse()

	eng := fusleep.NewEngine(
		fusleep.WithWindow(*window),
		fusleep.WithParallelism(*parallel),
		fusleep.WithCache(*cache),
	)
	srv := server.New(server.Config{
		Engine:     eng,
		Shards:     *shards,
		QueueDepth: *queue,
		MaxCells:   *maxCells,
		MaxWindow:  *maxWindow,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fusleepd listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting sweeps, finish queued and in-flight
	// cells, then close the listener once open streams have delivered the
	// final events.
	fmt.Fprintln(os.Stderr, "fusleepd: draining in-flight cells...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "fusleepd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fusleepd: shutdown: %v\n", err)
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "fusleepd: bye")
}
