// Command simcpu runs benchmarks of the suite on the simulated Table 2
// machine through fusleep.Engine.Simulate and reports pipeline, cache,
// predictor, and functional-unit statistics. It is the inspection tool for
// the simulation substrate; results render as text, JSON, or CSV.
//
// Usage:
//
//	simcpu -bench mcf -insts 1000000 -fus 2 -l2lat 12
//	simcpu -all -insts 500000
//	simcpu -all -format json
//	simcpu -bench gcc -insts 5000000 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The -cpuprofile and -memprofile flags write pprof profiles covering the
// simulation, so hot-path regressions in the cycle engine can be diagnosed
// with `go tool pprof` without editing code.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"github.com/archsim/fusleep"
)

// main delegates to run so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "gcc", "benchmark name")
	all := flag.Bool("all", false, "run the whole suite")
	insts := flag.Uint64("insts", 1_000_000, "instruction window")
	fus := flag.Int("fus", 0, "integer functional units (0 = paper's Table 3 count)")
	l2lat := flag.Int("l2lat", 12, "L2 hit latency, cycles")
	verbose := flag.Bool("v", false, "include cache/predictor detail columns")
	format := flag.String("format", "text", "output format: text | json | csv")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulations to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the simulations) to this file")
	flag.Parse()

	render, err := fusleep.RendererFor(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Registered before the CPU profile starts so the LIFO unwind stops CPU
	// profiling first: the forced GC and heap serialization below must not
	// be sampled into the tail of the CPU profile.
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // surface live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}

	names := []string{*bench}
	if *all {
		names = fusleep.BenchmarkNames()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := fusleep.NewEngine(fusleep.WithWindow(*insts))

	cols := []string{"bench", "FUs", "insts", "cycles", "IPC", "util%", "idle%", "L1D-mr", "bp-acc"}
	if *verbose {
		cols = append(cols, "L1I-mr", "L2-mr", "dtlb-mr", "forwards", "mispredicts", "fetch-stalls",
			"paper-IPC", "paper-max", "paper-FUs")
	}
	paper := map[string]fusleep.BenchmarkInfo{}
	for _, b := range fusleep.Benchmarks() {
		paper[b.Name] = b
	}
	tbl := fusleep.NewTable("simcpu: simulated Table 2 machine", cols...)
	for _, name := range names {
		rep, err := eng.Simulate(ctx, name, fusleep.SimFUs(*fus), fusleep.SimL2Latency(*l2lat))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		var idleFrac float64
		for _, p := range rep.FUProfiles {
			idleFrac += float64(p.IdleCycles()) / float64(p.TotalCycles())
		}
		idleFrac /= float64(len(rep.FUProfiles))
		row := []string{
			rep.Name, fmt.Sprintf("%d", rep.FUs),
			fmt.Sprintf("%d", rep.Committed), fmt.Sprintf("%d", rep.Cycles),
			fmt.Sprintf("%.3f", rep.IPC),
			fmt.Sprintf("%.1f", rep.MeanFUUtilization*100),
			fmt.Sprintf("%.1f", idleFrac*100),
			fmt.Sprintf("%.3f", rep.L1DMissRate),
			fmt.Sprintf("%.3f", rep.BranchAccuracy),
		}
		if *verbose {
			p := paper[rep.Name]
			row = append(row,
				fmt.Sprintf("%.4f", rep.L1IMissRate),
				fmt.Sprintf("%.3f", rep.L2MissRate),
				fmt.Sprintf("%.4f", rep.DTLBMissRate),
				fmt.Sprintf("%d", rep.LoadForwards),
				fmt.Sprintf("%d", rep.Mispredicts),
				fmt.Sprintf("%d", rep.FetchMispredictStalls),
				fmt.Sprintf("%.3f", p.PaperIPC),
				fmt.Sprintf("%.3f", p.PaperMaxIPC),
				fmt.Sprintf("%d", p.PaperFUs))
		}
		tbl.AddRow(row...)
	}
	arts := []fusleep.Artifact{fusleep.TableArtifact("simcpu", tbl)}
	if err := render(os.Stdout, arts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
