// Command simcpu runs one benchmark of the suite on the simulated Table 2
// machine and reports pipeline, cache, predictor, and functional-unit
// statistics. It is the inspection tool for the simulation substrate.
//
// Usage:
//
//	simcpu -bench mcf -insts 1000000 -fus 2 -l2lat 12
//	simcpu -all -insts 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	all := flag.Bool("all", false, "run the whole suite")
	insts := flag.Uint64("insts", 1_000_000, "instruction window")
	fus := flag.Int("fus", 0, "integer functional units (0 = paper's Table 3 count)")
	l2lat := flag.Int("l2lat", 12, "L2 hit latency, cycles")
	verbose := flag.Bool("v", false, "print cache/predictor detail")
	flag.Parse()

	specs := workload.Benchmarks
	if !*all {
		s, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []workload.Spec{s}
	}

	fmt.Printf("%-8s %4s %10s %10s %7s %8s %8s %8s %8s\n",
		"bench", "FUs", "insts", "cycles", "IPC", "util%", "idle%", "L1D-mr", "bp-acc")
	for _, s := range specs {
		n := *fus
		if n == 0 {
			n = s.PaperFUs
		}
		cfg := pipeline.DefaultConfig().WithIntALUs(n).WithL2Latency(*l2lat)
		cfg.MaxInsts = *insts
		cpu, err := pipeline.New(cfg, s.NewTrace(*insts))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := cpu.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.Name, err)
			os.Exit(1)
		}
		var idleFrac float64
		for _, fu := range res.FUs {
			idleFrac += 1 - fu.Utilization()
		}
		idleFrac /= float64(len(res.FUs))
		fmt.Printf("%-8s %4d %10d %10d %7.3f %8.1f %8.1f %8.3f %8.3f\n",
			s.Name, n, res.Committed, res.Cycles, res.IPC(),
			res.MeanFUUtilization()*100, idleFrac*100,
			res.L1D.MissRate(), res.Bpred.DirAccuracy())
		if *verbose {
			fmt.Printf("    paper IPC=%.3f (max %.3f, FUs %d)  L1I-mr=%.4f L2-mr=%.3f "+
				"dtlb-mr=%.4f forwards=%d mispredicts=%d fetch-stalls=%d\n",
				s.PaperIPC, s.PaperMaxIPC, s.PaperFUs,
				res.L1I.MissRate(), res.L2.MissRate(), res.DTLB.MissRate(),
				res.LoadForwards, res.Bpred.Mispredicts, res.FetchMispredictStalls)
		}
	}
}
