package fusleep_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/archsim/fusleep"
)

func TestFacadeEnergyModel(t *testing.T) {
	tech := fusleep.DefaultTech()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
	be := tech.Breakeven(0.5)
	if be < 15 || be > 25 {
		t.Errorf("breakeven %.1f out of expected band", be)
	}
	prof := fusleep.NewIdleProfile()
	prof.ActiveCycles = 1000
	prof.AddIdle(30, 10)
	ms := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: fusleep.MaxSleep}, 0.5,
		[]*fusleep.IdleProfile{prof})
	no := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: fusleep.NoOverhead}, 0.5,
		[]*fusleep.IdleProfile{prof})
	if no.Total() >= ms.Total() {
		t.Errorf("NoOverhead %.3f should undercut MaxSleep %.3f", no.Total(), ms.Total())
	}
	// Summing across two profiles doubles the energy.
	both := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: fusleep.MaxSleep}, 0.5,
		[]*fusleep.IdleProfile{prof, prof})
	if diff := both.Total() - 2*ms.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("profile summation broken: %g vs %g", both.Total(), 2*ms.Total())
	}
}

func TestFacadeController(t *testing.T) {
	ctrl, err := fusleep.NewController(fusleep.PolicyConfig{Policy: fusleep.GradualSleep, Slices: 4},
		fusleep.DefaultTech(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st := ctrl.Step(false)
	if st.SleepFrac != 0.25 {
		t.Errorf("first idle cycle sleep fraction %g", st.SleepFrac)
	}
}

func TestFacadeCircuit(t *testing.T) {
	cfg := fusleep.DefaultFUCircuit()
	fu, err := fusleep.NewCircuitFU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fu.Evaluate(0.5); err != nil {
		t.Fatal(err)
	}
	if err := fu.Sleep(); err != nil {
		t.Fatal(err)
	}
	if fu.Energy().Total() <= 0 {
		t.Error("circuit accrued no energy")
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := fusleep.BenchmarkNames()
	if len(names) != 9 {
		t.Fatalf("suite has %d names", len(names))
	}
	eng := fusleep.NewEngine()
	if _, err := eng.Simulate(context.Background(), "bogus"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSimulateBenchmarkDefaults(t *testing.T) {
	eng := fusleep.NewEngine(fusleep.WithWindow(80_000))
	rep, err := eng.Simulate(context.Background(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FUs != 2 {
		t.Errorf("gcc should default to the paper's 2 FUs, got %d", rep.FUs)
	}
	if rep.Committed != 80_000 {
		t.Errorf("committed %d", rep.Committed)
	}
	if rep.IPC <= 0 || len(rep.FUProfiles) != 2 {
		t.Errorf("report incomplete: %+v", rep)
	}
	for _, p := range rep.FUProfiles {
		if p.TotalCycles() != rep.Cycles {
			t.Errorf("profile covers %d of %d cycles", p.TotalCycles(), rep.Cycles)
		}
	}
}

func TestExperimentListAndRun(t *testing.T) {
	exps := fusleep.Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	eng := fusleep.NewEngine()
	arts, err := eng.RunExperiment(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fusleep.RenderText(&buf, arts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dual-Vt") || !strings.Contains(out, "22.2") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
	if _, err := eng.RunExperiment(context.Background(), "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentsShareRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	eng := fusleep.NewEngine(fusleep.WithWindow(50_000), fusleep.WithSweep(25_000))
	arts, err := eng.RunExperiments(context.Background(), "fig8a", "fig9b")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fusleep.RenderText(&buf, arts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "Figure 9b") {
		t.Errorf("missing sections:\n%s", out[:min(400, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
