package fusleep_test

import (
	"context"
	"math"
	"testing"

	"github.com/archsim/fusleep"
)

// Golden tuner case: one pinned workload × technology point, two FU
// counts, and the full integer grid over the SleepTimeout and GradualSleep
// parameter axes. The exhaustive grid is the ground truth; the tuner must
// reach its E·D optimum within 2% while issuing at most one fifth of the
// grid's cell evaluations (counted via the engines' simulation-request
// stats), and must do so identically across runs.
const (
	goldenWindow  = 30_000
	goldenTimeout = 96 // SleepTimeout thresholds 1..96
	goldenSlices  = 32 // GradualSleep K 1..32
)

func goldenSpace() fusleep.TuneSpace {
	return fusleep.TuneSpace{
		Policies: []fusleep.Policy{
			fusleep.AlwaysActive, fusleep.MaxSleep, fusleep.SleepTimeout, fusleep.GradualSleep,
		},
		TimeoutRange: [2]int{1, goldenTimeout},
		SlicesRange:  [2]int{1, goldenSlices},
		FUCounts:     []int{2, 4},
		Benchmarks:   []string{"gcc"},
		Window:       goldenWindow,
	}
}

// goldenGrid expands the same space exhaustively: every integer parameter
// value of every policy at every FU count.
func goldenGrid() fusleep.Grid {
	policies := []fusleep.PolicyConfig{
		{Policy: fusleep.AlwaysActive},
		{Policy: fusleep.MaxSleep},
	}
	for T := 1; T <= goldenTimeout; T++ {
		policies = append(policies, fusleep.PolicyConfig{Policy: fusleep.SleepTimeout, Timeout: T})
	}
	for k := 1; k <= goldenSlices; k++ {
		policies = append(policies, fusleep.PolicyConfig{Policy: fusleep.GradualSleep, Slices: k})
	}
	return fusleep.Grid{
		Policies:   policies,
		FUCounts:   []int{2, 4},
		Benchmarks: []string{"gcc"},
		Window:     goldenWindow,
	}
}

// simRequests folds an engine's stats into its total simulation-request
// count: one per cell evaluation here (one benchmark per cell).
func simRequests(s fusleep.EngineStats) uint64 {
	return s.Simulations + s.CacheHits + s.InflightJoins
}

func runGoldenTuner(t *testing.T, budget int) (fusleep.TuneResult, uint64) {
	t.Helper()
	eng := fusleep.NewEngine(fusleep.WithWindow(goldenWindow))
	res, err := eng.Optimize(context.Background(),
		fusleep.WithTuneSpace(goldenSpace()),
		fusleep.WithTuneObjective(fusleep.TuneObjective{Kind: fusleep.TuneMinED}),
		fusleep.WithTuneBudget(budget),
	)
	if err != nil {
		t.Fatal(err)
	}
	return res, simRequests(eng.Stats())
}

func TestGoldenTunerMatchesExhaustiveGrid(t *testing.T) {
	// Ground truth: the exhaustive grid, on its own engine so request
	// accounting stays separate.
	gridEng := fusleep.NewEngine(fusleep.WithWindow(goldenWindow))
	grid := goldenGrid()
	gridCells := len(gridEng.Cells(grid))
	var results []fusleep.CellResult
	err := gridEng.SweepStream(context.Background(), grid, func(res fusleep.CellResult) error {
		results = append(results, res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != gridCells {
		t.Fatalf("grid streamed %d of %d cells", len(results), gridCells)
	}
	gridRequests := simRequests(gridEng.Stats())
	if gridRequests != uint64(gridCells) {
		t.Fatalf("grid issued %d sim requests for %d cells", gridRequests, gridCells)
	}
	refCycles := math.Inf(1)
	for _, res := range results {
		refCycles = math.Min(refCycles, res.MeanCycles)
	}
	gridBest := math.Inf(1)
	var gridBestCell fusleep.CellResult
	for _, res := range results {
		if ed := res.RelEnergy * (res.MeanCycles / refCycles); ed < gridBest {
			gridBest, gridBestCell = ed, res
		}
	}

	// The tuner gets one fifth of the grid's evaluation budget.
	budget := gridCells / 5
	res, tunerRequests := runGoldenTuner(t, budget)

	if tunerRequests > uint64(gridCells/5) {
		t.Errorf("tuner issued %d sim requests; the budget is 1/5 of the grid's %d", tunerRequests, gridCells)
	}
	// Shared-pass batching: each tuner round simulates once per distinct
	// (workload, FU-mix) group and evaluates its policy variants closed-form
	// off the recorded profiles, so the engine sees strictly fewer
	// simulation requests than cell evaluations (the space has only two FU
	// mixes) — where the per-cell path issued exactly one request per eval.
	if tunerRequests >= uint64(res.Evals) {
		t.Errorf("tuner issued %d sim requests for %d evals; batching should coalesce rounds into per-mix suite requests", tunerRequests, res.Evals)
	}
	if res.Best.Score > gridBest*1.02 {
		t.Errorf("tuner best E·D %.6f misses the grid optimum %.6f (%s) by more than 2%%",
			res.Best.Score, gridBest, gridBestCell.Cell.Policy.Policy)
	}
	// The tuner probes a subset of the grid, so it cannot beat the optimum.
	if res.Best.Score < gridBest*(1-1e-12) {
		t.Errorf("tuner best %.9f beat the exhaustive optimum %.9f: spaces diverged", res.Best.Score, gridBest)
	}
	t.Logf("grid: %d cells, best E·D %.6f (%v); tuner: %d evals, best E·D %.6f (%s)",
		gridCells, gridBest, gridBestCell.Cell.Policy, res.Evals, res.Best.Score, res.Best.Label())
}

func TestGoldenTunerDeterministic(t *testing.T) {
	a, reqA := runGoldenTuner(t, 48)
	b, reqB := runGoldenTuner(t, 48)
	if reqA != reqB {
		t.Errorf("request counts differ: %d vs %d", reqA, reqB)
	}
	if a.Best.Cell.Key() != b.Best.Cell.Key() {
		t.Errorf("best cells differ: %s vs %s", a.Best.Label(), b.Best.Label())
	}
	if a.Best.Score != b.Best.Score || a.Probes != b.Probes || a.Rounds != b.Rounds {
		t.Errorf("run accounting differs: %+v vs %+v", a, b)
	}
	if len(a.Frontier) != len(b.Frontier) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(a.Frontier), len(b.Frontier))
	}
	for i := range a.Frontier {
		if a.Frontier[i].Cell.Key() != b.Frontier[i].Cell.Key() || a.Frontier[i].Score != b.Frontier[i].Score {
			t.Errorf("frontier point %d differs", i)
		}
	}
}
