package fusleep

import (
	"context"

	"github.com/archsim/fusleep/internal/optimize"
)

// Policy auto-tuner types, re-exported from internal/optimize. The tuner
// searches the policy-parameter space (policy family × SleepTimeout
// threshold × GradualSleep K × FU count × technology point) for
// Pareto-optimal energy-delay configurations instead of exhaustively
// sweeping it; see Engine.Optimize.
type (
	// TuneSpace is the tuner's search domain; zero-valued fields resolve
	// against the engine's defaults.
	TuneSpace = optimize.Space
	// TuneObjective scores candidates: an objective kind plus an optional
	// slowdown cap.
	TuneObjective = optimize.Objective
	// TuneObjectiveKind names one scalarization of the energy-delay
	// trade-off.
	TuneObjectiveKind = optimize.Kind
	// TunePoint is one evaluated configuration in objective coordinates.
	TunePoint = optimize.Point
	// TuneProbe is one trace entry of a tuner run.
	TuneProbe = optimize.Probe
	// TuneResult is a completed tuner run: best point, Pareto frontier,
	// and evaluation accounting.
	TuneResult = optimize.Result
	// TuneEvaluator scores one candidate cell; see WithTuneEvaluator.
	TuneEvaluator = optimize.Evaluator
	// TuneBatchEvaluator scores one tuner round's cells in a single call;
	// see WithTuneBatchEvaluator.
	TuneBatchEvaluator = optimize.BatchEvaluator
)

// The tuner's objective kinds: minimize E·D, E·D², or leakage energy.
const (
	TuneMinED      = optimize.KindED
	TuneMinED2     = optimize.KindED2
	TuneMinLeakage = optimize.KindLeakage
)

// ParseTuneObjective maps an objective name ("ed", "ed2", "leakage",
// case-insensitively) to its kind.
func ParseTuneObjective(name string) (TuneObjectiveKind, error) {
	return optimize.ParseKind(name)
}

// TuneObjectives lists the accepted objective kinds.
func TuneObjectives() []TuneObjectiveKind { return optimize.Kinds() }

// TuneOption configures one Engine.Optimize run.
type TuneOption func(*optimize.Config)

// WithTuneSpace sets the search domain (default: every causal policy over
// the full suite at the engine's technology and window).
func WithTuneSpace(s TuneSpace) TuneOption {
	return func(c *optimize.Config) { c.Space = s }
}

// WithTuneObjective sets the objective (default: minimize E·D).
func WithTuneObjective(o TuneObjective) TuneOption {
	return func(c *optimize.Config) { c.Objective = o }
}

// WithTuneBudget bounds the number of distinct cells the tuner may
// evaluate (default 64). Values < 1 are ignored.
func WithTuneBudget(maxEvals int) TuneOption {
	return func(c *optimize.Config) {
		if maxEvals > 0 {
			c.MaxEvals = maxEvals
		}
	}
}

// WithTuneRounds bounds the refinement rounds after the seed round
// (default 4). Values < 1 are ignored.
func WithTuneRounds(n int) TuneOption {
	return func(c *optimize.Config) {
		if n > 0 {
			c.Rounds = n
		}
	}
}

// WithTuneParallelism bounds concurrent candidate evaluations within a
// round (default 4). Values < 1 are ignored.
func WithTuneParallelism(n int) TuneOption {
	return func(c *optimize.Config) {
		if n > 0 {
			c.Parallel = n
		}
	}
}

// WithTuneEvaluator overrides how candidate cells are evaluated, cell by
// cell. The default evaluates rounds batched through the engine's shared
// simulation cache (Engine.RunCells); the sweep service substitutes an
// evaluator that routes probes through its sharded job queue so tuner and
// sweep cells share workers and dedupe.
func WithTuneEvaluator(eval TuneEvaluator) TuneOption {
	return func(c *optimize.Config) { c.Eval = eval }
}

// WithTuneBatchEvaluator overrides how whole tuner rounds are evaluated; it
// takes precedence over WithTuneEvaluator. The batch evaluator must return
// exactly the per-cell results the cell-by-cell path would, in input order.
func WithTuneBatchEvaluator(eval TuneBatchEvaluator) TuneOption {
	return func(c *optimize.Config) { c.BatchEval = eval }
}

// Optimize searches the policy-parameter space for the configuration that
// minimizes the objective, evaluating candidates through the engine's
// shared simulation cache. It is the batch form of OptimizeStream.
func (e *Engine) Optimize(ctx context.Context, opts ...TuneOption) (TuneResult, error) {
	return e.OptimizeStream(ctx, nil, opts...)
}

// OptimizeStream runs the tuner and streams every probe — accepted or
// rejected — to fn in deterministic evaluation order as it completes.
// fn may be nil; a non-nil error from fn aborts the run. The search is
// deterministic: the same engine configuration, space, objective, and
// budget reproduce the same probe sequence and the same result.
func (e *Engine) OptimizeStream(ctx context.Context, fn func(TuneProbe) error, opts ...TuneOption) (TuneResult, error) {
	var cfg optimize.Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.Space = cfg.Space.WithDefaults(e.tech, e.window)
	if cfg.Eval == nil && cfg.BatchEval == nil {
		// Default evaluation is batched: each tuner round's probes are
		// grouped by simulation identity, simulated once per (workload,
		// FU-mix) group, and scored closed-form off the recorded profiles.
		// A caller-supplied evaluator (WithTuneEvaluator — e.g. the sweep
		// service's sharded queue) keeps the per-cell path.
		cfg.BatchEval = func(ctx context.Context, cells []Cell) ([]CellResult, error) {
			return e.RunCells(ctx, cells)
		}
	}
	return optimize.Run(ctx, cfg, fn)
}

// TuneArtifacts renders a completed tuner run as structured artifacts —
// the best point and the Pareto frontier in table and series form —
// renderable as text, JSON, CSV, or NDJSON like every other artifact.
func TuneArtifacts(res TuneResult) []Artifact { return res.Artifacts() }
