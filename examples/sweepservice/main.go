// Command sweepservice is a client for the fusleepd sweep daemon: it
// submits a policy × technology sweep grid, streams the per-cell NDJSON
// results as they complete, and prints a summary including the service's
// simulation-cache utilization. Run `fusleepd` first, then:
//
//	go run ./examples/sweepservice -server http://localhost:8080
//	go run ./examples/sweepservice -server http://localhost:8080 \
//	    -ps 0.05,0.5 -benchmarks gcc,mcf -window 200000
//
// Submitting the same grid twice demonstrates the dedupe path: the second
// run's cells are served from the engine's simulation cache, visible in
// the reported cache hit rate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

type sweepRequest struct {
	Ps         []float64 `json:"ps,omitempty"`
	Benchmarks []string  `json:"benchmarks,omitempty"`
	FUCounts   []int     `json:"fuCounts,omitempty"`
	Window     uint64    `json:"window,omitempty"`
}

type submitResponse struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
	URL   string `json:"url"`
}

type streamEvent struct {
	Event     string `json:"event"`
	ID        string `json:"id"`
	State     string `json:"state,omitempty"`
	Cells     int    `json:"cells,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Failed    int    `json:"failed,omitempty"`
	Error     string `json:"error,omitempty"`
	Key       string `json:"key,omitempty"`
	Result    *struct {
		Index int `json:"index"`
		Cell  struct {
			Policy struct {
				Policy string `json:"policy"`
			} `json:"policy"`
			Tech struct {
				P float64 `json:"p"`
			} `json:"tech"`
			FUs int `json:"fus"`
		} `json:"cell"`
		RelEnergy       float64 `json:"relEnergy"`
		LeakageFraction float64 `json:"leakageFraction"`
	} `json:"result,omitempty"`
}

func main() {
	serverURL := flag.String("server", "http://localhost:8080", "fusleepd base URL")
	ps := flag.String("ps", "0.05,0.5", "leakage factors, comma-separated")
	benchmarks := flag.String("benchmarks", "gcc,mcf", "benchmarks, comma-separated (empty = all nine)")
	window := flag.Uint64("window", 150_000, "instruction window per benchmark")
	repeat := flag.Int("repeat", 2, "submissions of the same grid (>=2 shows cache dedupe)")
	flag.Parse()

	req := sweepRequest{Window: *window}
	for _, f := range strings.Split(*ps, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		req.Ps = append(req.Ps, v)
	}
	if *benchmarks != "" {
		for _, b := range strings.Split(*benchmarks, ",") {
			req.Benchmarks = append(req.Benchmarks, strings.TrimSpace(b))
		}
	}

	for run := 1; run <= *repeat; run++ {
		start := time.Now()
		id, cells, err := submit(*serverURL, req)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("run %d: sweep %s accepted (%d cells)\n", run, id, cells)
		if err := stream(*serverURL, id); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("run %d finished in %v; %s\n\n",
			run, time.Since(start).Round(time.Millisecond), cacheLine(*serverURL))
	}
}

// submitBackoff bounds how long the client waits out 429 load shedding:
// the daemon's Retry-After hint (capped exponentially per attempt) across
// at most submitAttempts tries.
const (
	submitAttempts   = 5
	submitBackoffCap = 30 * time.Second
)

func submit(base string, req sweepRequest) (id string, cells int, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", 0, err
	}
	backoff := time.Second
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < submitAttempts {
			// The daemon is shedding load; honor its Retry-After hint,
			// bounded by the client's own capped exponential backoff.
			wait := backoff
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			if wait > submitBackoffCap {
				wait = submitBackoffCap
			}
			resp.Body.Close()
			fmt.Printf("server busy (429); retrying in %v (attempt %d/%d)\n", wait, attempt, submitAttempts)
			time.Sleep(wait)
			if backoff *= 2; backoff > submitBackoffCap {
				backoff = submitBackoffCap
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			// Errors arrive in the canonical /v1 envelope:
			// {"error": {"code": "...", "message": "..."}}.
			var e struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return "", 0, fmt.Errorf("submit: %s: %s (%s)", resp.Status, e.Error.Message, e.Error.Code)
		}
		var sub submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", 0, err
		}
		return sub.ID, sub.Cells, nil
	}
}

func stream(base, id string) error {
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		switch ev.Event {
		case "cell":
			r := ev.Result
			if r == nil {
				return fmt.Errorf("cell event without a result: %s", sc.Text())
			}
			fmt.Printf("  cell %2d  p=%-5.3g fus=%-5d %-13s E/E_base=%.4f leak=%.4f\n",
				r.Index, r.Cell.Tech.P, r.Cell.FUs, r.Cell.Policy.Policy, r.RelEnergy, r.LeakageFraction)
		case "end":
			if ev.Error != "" {
				return fmt.Errorf("sweep %s %s: %s", ev.ID, ev.State, ev.Error)
			}
			fmt.Printf("  sweep %s %s: %d/%d cells\n", ev.ID, ev.State, ev.Completed, ev.Cells)
		}
	}
	return sc.Err()
}

// cacheLine summarizes the daemon's simulation-cache metrics.
func cacheLine(base string) string {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err.Error()
	}
	defer resp.Body.Close()
	var runs, hits, rate string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "fusleepd_sim_runs_total "):
			runs = strings.Fields(line)[1]
		case strings.HasPrefix(line, "fusleepd_sim_cache_hits_total "):
			hits = strings.Fields(line)[1]
		case strings.HasPrefix(line, "fusleepd_sim_cache_hit_rate "):
			rate = strings.Fields(line)[1]
		}
	}
	return fmt.Sprintf("sim runs %s, cache hits %s, hit rate %s", runs, hits, rate)
}
