// Quickstart: the energy model in a few lines — breakeven intervals, policy
// comparison on a synthetic scenario, and the punchline of the paper: which
// policy should manage your functional unit's sleep mode? The last section
// shows the Engine API, the entry point for everything simulated.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/archsim/fusleep"
)

func main() {
	tech := fusleep.DefaultTech() // 70nm-era point: p=0.05, c=0.001, e_slp=0.01
	alpha := 0.5

	fmt.Printf("technology: p=%.2f c=%.3f e_slp=%.2f duty=%.1f\n",
		tech.P, tech.C, tech.SleepOverhead, tech.Duty)
	fmt.Printf("breakeven idle interval: %.1f cycles\n", tech.Breakeven(alpha))
	fmt.Printf("recommended GradualSleep slices: %d\n\n", tech.BreakevenSlices(alpha))

	// A functional unit that computes half the time, idling in 10-cycle
	// bursts — the paper's Figure 4b regime.
	scenario := fusleep.Scenario{TotalCycles: 1_000_000, Usage: 0.5, MeanIdle: 10, Alpha: alpha}

	fmt.Println("policy comparison (energy relative to 100% computation):")
	for _, p := range []fusleep.Tech{tech, fusleep.HighLeakTech()} {
		fmt.Printf("  at p=%.2f:\n", p.P)
		for _, pol := range fusleep.Policies {
			rel := p.RelativeToBase(fusleep.PolicyConfig{Policy: pol}, scenario)
			e := p.PolicyEnergy(fusleep.PolicyConfig{Policy: pol}, scenario)
			fmt.Printf("    %-13s E/E_base=%.4f  leakage=%.1f%%\n",
				pol, rel, e.LeakageFraction()*100)
		}
	}

	fmt.Println("\nconclusion: below the breakeven point clock gating wins;")
	fmt.Println("as leakage grows, aggressive sleeping wins; GradualSleep hedges both.")

	// The Engine serves experiments as structured artifacts: build it once
	// (options configure scale, parallelism, caching), run with a context,
	// render as text, JSON, or CSV.
	fmt.Println("\nthe same parameters as a paper artifact, via the Engine:")
	eng := fusleep.NewEngine(fusleep.WithTech(tech))
	arts, err := eng.RunExperiments(context.Background(), "table4")
	if err != nil {
		log.Fatal(err)
	}
	if err := fusleep.RenderText(os.Stdout, arts); err != nil {
		log.Fatal(err)
	}
}
