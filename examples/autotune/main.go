// Autotune finds the Pareto-optimal sleep-policy configuration for a
// workload without sweeping the whole design space: it runs the engine's
// auto-tuner twice — once minimizing the energy-delay product, once
// minimizing leakage energy under a slowdown cap — and prints the best
// point, the frontier, and how many cell evaluations the search needed
// compared to the exhaustive grid it replaces.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/archsim/fusleep"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	window := flag.Uint64("window", 250_000, "instruction window")
	budget := flag.Int("budget", 48, "cell evaluation budget per objective")
	flag.Parse()

	eng := fusleep.NewEngine(fusleep.WithWindow(*window))
	space := fusleep.TuneSpace{
		Benchmarks:   []string{*bench},
		FUCounts:     []int{1, 2, 4},
		TimeoutRange: [2]int{1, 256},
		SlicesRange:  [2]int{1, 128},
	}
	// The grid this search replaces: every policy × parameter × FU point.
	gridCells := 3 * (2 + 256 + 128)

	for _, obj := range []fusleep.TuneObjective{
		{Kind: fusleep.TuneMinED},
		{Kind: fusleep.TuneMinLeakage, SlowdownCap: 1.10},
	} {
		res, err := eng.Optimize(context.Background(),
			fusleep.WithTuneSpace(space),
			fusleep.WithTuneObjective(obj),
			fusleep.WithTuneBudget(*budget),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("objective %s: best %s (score %.4f) after %d of %d grid cells (%.0f%% saved)\n",
			obj, res.Best.Label(), res.Best.Score, res.Evals, gridCells,
			100*(1-float64(res.Evals)/float64(gridCells)))
		if err := fusleep.RenderText(os.Stdout, fusleep.TuneArtifacts(res)[1:2]); err != nil {
			log.Fatal(err)
		}
		fmt.Println(strings.Repeat("-", 72))
	}
	stats := eng.Stats()
	fmt.Printf("pipeline runs: %d (cache hit rate %.0f%% — probes share suite simulations)\n",
		stats.Simulations, 100*stats.HitRate())
}
