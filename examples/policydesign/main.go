// Policydesign walks through sizing a GradualSleep implementation for a
// real workload: simulate a benchmark, then sweep the slice count K over
// the measured idle profiles to find the robust choice, comparing it with
// the paper's recommendation of one slice per breakeven cycle.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/archsim/fusleep"
)

func main() {
	bench := flag.String("bench", "parser", "benchmark name")
	window := flag.Uint64("window", 800_000, "instruction window")
	flag.Parse()

	eng := fusleep.NewEngine(fusleep.WithWindow(*window))
	rep, err := eng.Simulate(context.Background(), *bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (IPC %.3f, %d FUs)\n\n", rep.Name, rep.IPC, rep.FUs)

	alpha := 0.5
	for _, p := range []float64{0.05, 0.2, 0.5} {
		tech := fusleep.DefaultTech().WithP(p)
		base := float64(len(rep.FUProfiles)) * tech.BaseEnergy(alpha, float64(rep.Cycles))
		rec := tech.BreakevenSlices(alpha)
		fmt.Printf("p=%.2f (breakeven %.1f cycles, recommended K=%d):\n",
			p, tech.Breakeven(alpha), rec)
		fmt.Printf("  %-10s %-12s\n", "K", "E/E_base")
		bestK, bestE := 0, 1e300
		for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			e := fusleep.PolicyEnergy(tech,
				fusleep.PolicyConfig{Policy: fusleep.GradualSleep, Slices: k},
				alpha, rep.FUProfiles).Total() / base
			marker := ""
			if k == rec || (rec > 1 && k < rec && rec < k*2) {
				marker = "  <- paper's recommendation (~breakeven)"
			}
			if e < bestE {
				bestK, bestE = k, e
			}
			fmt.Printf("  %-10d %-12.4f%s\n", k, e, marker)
		}
		ms := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: fusleep.MaxSleep}, alpha, rep.FUProfiles).Total() / base
		aa := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: fusleep.AlwaysActive}, alpha, rep.FUProfiles).Total() / base
		fmt.Printf("  best K=%d at %.4f  (MaxSleep %.4f, AlwaysActive %.4f)\n\n", bestK, bestE, ms, aa)
	}
}
