// Techscaling sweeps the leakage factor p across technology generations and
// finds the crossover where MaxSleep overtakes AlwaysActive, for several
// idle-interval regimes — reproducing the paper's central design guidance
// with the closed-form model, then cross-checking the two study points on
// measured workloads with a batch Engine.Sweep grid.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/archsim/fusleep"
)

func main() {
	alpha := 0.5
	fmt.Println("crossover leakage factor where MaxSleep overtakes AlwaysActive")
	fmt.Printf("%-18s %-12s %-30s\n", "mean idle (cyc)", "crossover p", "breakeven at crossover (cyc)")
	for _, idle := range []float64{2, 5, 10, 20, 50, 100} {
		cross := crossover(idle, alpha)
		if cross < 0 {
			fmt.Printf("%-18.0f %-12s\n", idle, "never")
			continue
		}
		be := fusleep.DefaultTech().WithP(cross).Breakeven(alpha)
		fmt.Printf("%-18.0f %-12.3f %-30.1f\n", idle, cross, be)
	}

	fmt.Println("\nGradualSleep's hedge across the whole space (E/E_NoOverhead):")
	fmt.Printf("%-8s %-14s %-14s %-14s\n", "p", "MaxSleep", "GradualSleep", "AlwaysActive")
	scenario := fusleep.Scenario{TotalCycles: 1e6, Usage: 0.5, MeanIdle: 15, Alpha: alpha}
	for i := 1; i <= 10; i++ {
		p := float64(i) * 0.1
		tech := fusleep.DefaultTech().WithP(p)
		no := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: fusleep.NoOverhead}, scenario).Total()
		row := []float64{}
		for _, pol := range []fusleep.Policy{fusleep.MaxSleep, fusleep.GradualSleep, fusleep.AlwaysActive} {
			row = append(row, tech.PolicyEnergy(fusleep.PolicyConfig{Policy: pol}, scenario).Total()/no)
		}
		fmt.Printf("%-8.1f %-14.3f %-14.3f %-14.3f\n", p, row[0], row[1], row[2])
	}
	fmt.Println("\nGradualSleep never sits at either extreme: the paper's argument that")
	fmt.Println("a more complex controller is unwarranted.")

	// The same question on measured workloads: one Engine.Sweep call
	// evaluates the policy × technology grid over the simulated suite
	// (small window here to keep the example quick).
	fmt.Println("\ncross-check on the simulated benchmark suite (Engine.Sweep):")
	eng := fusleep.NewEngine(fusleep.WithWindow(100_000))
	arts, err := eng.Sweep(context.Background(), fusleep.Grid{
		Techs: []fusleep.Tech{fusleep.DefaultTech(), fusleep.HighLeakTech()},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fusleep.RenderText(os.Stdout, arts); err != nil {
		log.Fatal(err)
	}
}

// crossover bisects for the p at which the two bounding policies cost the
// same on the given scenario; negative if MaxSleep never wins by p = 1.
func crossover(meanIdle, alpha float64) float64 {
	diff := func(p float64) float64 {
		tech := fusleep.DefaultTech().WithP(p)
		s := fusleep.Scenario{TotalCycles: 1e6, Usage: 0.5, MeanIdle: meanIdle, Alpha: alpha}
		ms := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: fusleep.MaxSleep}, s).Total()
		aa := tech.PolicyEnergy(fusleep.PolicyConfig{Policy: fusleep.AlwaysActive}, s).Total()
		return ms - aa
	}
	lo, hi := 1e-3, 1.0
	if diff(hi) > 0 {
		return -1
	}
	if diff(lo) < 0 {
		return lo
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if diff(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
