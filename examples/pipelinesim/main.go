// Pipelinesim runs a benchmark on the simulated Alpha-21264-like machine,
// extracts the measured per-functional-unit idle profiles, and accounts the
// energy of every sleep policy over them — the full Section 4/5 methodology
// of the paper on one benchmark.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/archsim/fusleep"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark name (see fusleep.BenchmarkNames)")
	window := flag.Uint64("window", 1_000_000, "instruction window")
	flag.Parse()

	// The Engine caches simulations and honors cancellation; one instance
	// serves any number of Simulate / RunExperiments / Sweep calls.
	eng := fusleep.NewEngine()
	rep, err := eng.Simulate(context.Background(), *bench, fusleep.SimWindow(*window))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d instructions in %d cycles (IPC %.3f) on %d integer FUs\n",
		rep.Name, rep.Committed, rep.Cycles, rep.IPC, rep.FUs)
	fmt.Printf("branch accuracy %.1f%%, L1D miss rate %.1f%%, L2 miss rate %.1f%%\n\n",
		rep.BranchAccuracy*100, rep.L1DMissRate*100, rep.L2MissRate*100)

	for i, prof := range rep.FUProfiles {
		fmt.Printf("FU %d: active %d cycles, idle %d cycles (%.1f%%), mean idle interval %.1f cycles\n",
			i, prof.ActiveCycles, prof.IdleCycles(),
			float64(prof.IdleCycles())/float64(prof.TotalCycles())*100, prof.MeanIdle())
	}

	fmt.Println("\npolicy energies over the measured profiles:")
	for _, p := range []float64{0.05, 0.50} {
		tech := fusleep.DefaultTech().WithP(p)
		base := float64(len(rep.FUProfiles)) * tech.BaseEnergy(0.5, float64(rep.Cycles))
		fmt.Printf("  p=%.2f:\n", p)
		for _, pol := range fusleep.Policies {
			e := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: pol}, 0.5, rep.FUProfiles)
			fmt.Printf("    %-13s E/E_base=%.4f  leakage=%.1f%%  transitions-cost=%.4f\n",
				pol, e.Total()/base, e.LeakageFraction()*100, e.Transition/base)
		}
	}
}
