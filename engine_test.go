package fusleep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/archsim/fusleep/internal/report"
)

func TestEngineOptionDefaults(t *testing.T) {
	e := NewEngine()
	if e.Window() != 1_000_000 {
		t.Errorf("default window %d", e.Window())
	}
	if e.SweepWindow() != 750_000 {
		t.Errorf("default sweep window %d", e.SweepWindow())
	}
	if e.Parallelism() != 0 {
		t.Errorf("default parallelism %d, want 0 (= suite size)", e.Parallelism())
	}
	if !e.CacheEnabled() {
		t.Error("cache should default to enabled")
	}
	if e.Tech() != DefaultTech() {
		t.Errorf("default tech %+v", e.Tech())
	}
}

func TestEngineOptionOverrides(t *testing.T) {
	e := NewEngine(
		WithWindow(123),
		WithSweep(456),
		WithParallelism(3),
		WithTech(HighLeakTech()),
		WithCache(false),
	)
	if e.Window() != 123 || e.SweepWindow() != 456 || e.Parallelism() != 3 {
		t.Errorf("overrides not applied: %d %d %d", e.Window(), e.SweepWindow(), e.Parallelism())
	}
	if e.CacheEnabled() {
		t.Error("WithCache(false) ignored")
	}
	if e.Tech() != HighLeakTech() {
		t.Errorf("WithTech ignored: %+v", e.Tech())
	}
	// Zero values leave the defaults in place.
	z := NewEngine(WithWindow(0), WithSweep(0), WithParallelism(0))
	if z.Window() != 1_000_000 || z.SweepWindow() != 750_000 || z.Parallelism() != 0 {
		t.Errorf("zero options changed defaults: %d %d %d", z.Window(), z.SweepWindow(), z.Parallelism())
	}
}

func TestEngineSimulate(t *testing.T) {
	e := NewEngine(WithWindow(60_000))
	rep, err := e.Simulate(context.Background(), "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FUs != 2 {
		t.Errorf("gcc should default to the paper's 2 FUs, got %d", rep.FUs)
	}
	if rep.Committed != 60_000 {
		t.Errorf("committed %d", rep.Committed)
	}
	if rep.IPC <= 0 || len(rep.FUProfiles) != 2 || rep.MeanFUUtilization <= 0 {
		t.Errorf("report incomplete: %+v", rep)
	}
	// Unknown benchmarks are rejected.
	if _, err := e.Simulate(context.Background(), "bogus"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	// A per-call option overrides the engine default.
	small, err := e.Simulate(context.Background(), "gcc", SimWindow(30_000), SimFUs(4))
	if err != nil {
		t.Fatal(err)
	}
	if small.Committed != 30_000 || small.FUs != 4 {
		t.Errorf("per-call options ignored: committed %d, FUs %d", small.Committed, small.FUs)
	}
}

func TestEngineSimulateCancellation(t *testing.T) {
	// A window far larger than any test run should be aborted almost
	// immediately once the context is canceled.
	e := NewEngine(WithWindow(200_000_000))
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := e.Simulate(ctx, "mcf")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Simulate returned %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
}

func TestEngineRunExperimentsArtifacts(t *testing.T) {
	e := NewEngine()
	arts, err := e.RunExperiments(context.Background(), "table1", "table4")
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("got %d artifacts", len(arts))
	}
	for _, a := range arts {
		if a.Kind != KindTable || a.Table == nil || a.ID == "" || a.Title == "" {
			t.Errorf("artifact malformed: %+v", a)
		}
	}
	if _, err := e.RunExperiments(context.Background(), "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	e := NewEngine()
	// One table and one series artifact cover both payload kinds.
	arts, err := e.RunExperiments(context.Background(), "table4", "fig4a")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderJSON(&buf, arts); err != nil {
		t.Fatal(err)
	}
	var back []Artifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("RenderJSON output does not unmarshal: %v", err)
	}
	if !reflect.DeepEqual(arts, back) {
		t.Errorf("JSON round trip lost data:\nhave %+v\nwant %+v", back, arts)
	}
	if back[1].Kind != KindSeries || len(back[1].Series.X) == 0 {
		t.Errorf("series payload not preserved: %+v", back[1])
	}
}

func TestEngineSweepGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	e := NewEngine(WithWindow(25_000))
	g := Grid{
		Techs:      []Tech{DefaultTech(), HighLeakTech()},
		FUCounts:   []int{2},
		Benchmarks: []string{"gcc", "mcf"},
		Policies: []PolicyConfig{
			{Policy: MaxSleep}, {Policy: AlwaysActive}, {Policy: NoOverhead},
		},
	}
	arts, err := e.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].Kind != KindTable {
		t.Fatalf("sweep artifacts: %+v", arts)
	}
	if got, want := len(arts[0].Table.Rows), 2*1*3; got != want {
		t.Errorf("grid rows = %d, want |techs|*|fus|*|policies| = %d", got, want)
	}
	// The engine's cache means a repeat sweep is nearly free and identical.
	again, err := e.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arts[0].Table.Rows, again[0].Table.Rows) {
		t.Error("repeat sweep differs despite cache")
	}
}

func TestRendererFor(t *testing.T) {
	for _, f := range Formats() {
		if _, err := RendererFor(f); err != nil {
			t.Errorf("RendererFor(%q): %v", f, err)
		}
	}
	if _, err := RendererFor("xml"); err == nil {
		t.Error("unknown format accepted")
	}
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1", "2")
	arts := []Artifact{TableArtifact("adhoc", tbl)}
	var text, csvOut bytes.Buffer
	if err := RenderText(&text, arts); err != nil {
		t.Fatal(err)
	}
	if err := RenderCSV(&csvOut, arts); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 || csvOut.Len() == 0 {
		t.Error("empty render output")
	}
}

// Engine internals reach into internal/report types; keep the alias honest.
var _ = report.Artifact(Artifact{})

func TestEngineSweepStreamAndStats(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	e := NewEngine(WithWindow(20_000))
	g := Grid{
		Techs:      []Tech{DefaultTech(), HighLeakTech()},
		Benchmarks: []string{"gcc"},
	}
	cells := e.Cells(g)
	if len(cells) != 8 { // 2 techs x 4 default policies
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// The engine's default window is stamped onto resolved cells so their
	// keys are canonical.
	if cells[0].Window != e.Window() {
		t.Errorf("cell window = %d, want engine default %d", cells[0].Window, e.Window())
	}

	tbl := e.NewSweepTable(g)
	var got []CellResult
	if err := e.SweepStream(context.Background(), g, func(res CellResult) error {
		got = append(got, res)
		AddSweepRow(tbl, res)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("streamed %d cells, want %d", len(got), len(cells))
	}
	for i, res := range got {
		if res.Index != i {
			t.Errorf("cell %d delivered with index %d", i, res.Index)
		}
		if res.Cell.Key() != cells[i].Key() {
			t.Errorf("cell %d identity mismatch", i)
		}
	}

	// The batch Sweep over the same grid produces the same rows and, via
	// the shared cache, runs no further simulations.
	before := e.Stats()
	if before.Simulations == 0 {
		t.Fatal("stream ran no simulations")
	}
	arts, err := e.Sweep(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arts[0].Table.Rows, tbl.Rows) {
		t.Errorf("stream-assembled table differs from Sweep:\n%v\nvs\n%v", tbl.Rows, arts[0].Table.Rows)
	}
	after := e.Stats()
	if after.Simulations != before.Simulations {
		t.Errorf("repeat sweep re-simulated: %d -> %d", before.Simulations, after.Simulations)
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("repeat sweep missed the cache: hits %d -> %d", before.CacheHits, after.CacheHits)
	}
	if rate := after.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate = %g, want in (0,1)", rate)
	}

	// RunCell on one cell is a pure cache hit now.
	res, err := e.RunCell(context.Background(), cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.RelEnergy != got[0].RelEnergy {
		t.Errorf("RunCell rel = %g, stream said %g", res.RelEnergy, got[0].RelEnergy)
	}
	if e.Stats().Simulations != after.Simulations {
		t.Error("RunCell re-simulated a cached cell")
	}
}
