// Benchmark harness: one testing.B benchmark per table and figure of the
// paper. Each benchmark regenerates its artifact end to end (simulations
// included) and logs the produced rows/series once, so
//
//	go test -bench=BenchmarkFig8a -benchtime=1x -v
//
// reproduces the corresponding result. Simulated benchmarks use reduced
// instruction windows to keep iteration times reasonable; EXPERIMENTS.md
// records the full-scale numbers.
package fusleep_test

import (
	"bytes"
	"context"
	"testing"

	"github.com/archsim/fusleep"
)

// benchEngine builds a fresh engine per iteration — a shared engine's cache
// would turn every iteration after the first into map lookups instead of
// the simulation cost being measured. Windows keep iterations around a
// second.
func benchEngine() *fusleep.Engine {
	return fusleep.NewEngine(fusleep.WithWindow(150_000), fusleep.WithSweep(75_000))
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		arts, err := benchEngine().RunExperiments(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var buf bytes.Buffer
			if err := fusleep.RenderText(&buf, arts); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + buf.String())
		}
	}
}

// Paper tables.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Paper figures.
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { benchExperiment(b, "fig4c") }
func BenchmarkFig4d(b *testing.B) { benchExperiment(b, "fig4d") }
func BenchmarkFig5c(b *testing.B) { benchExperiment(b, "fig5c") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }

// Section 5 side study and extensions.
func BenchmarkMcfFUStudy(b *testing.B)      { benchExperiment(b, "mcf-fu") }
func BenchmarkTimeoutStudy(b *testing.B)    { benchExperiment(b, "timeout") }
func BenchmarkIdleByBench(b *testing.B)     { benchExperiment(b, "idle-by-bench") }
func BenchmarkGradualSlices(b *testing.B)   { benchExperiment(b, "gradual-slices") }
func BenchmarkBreakevenSens(b *testing.B)   { benchExperiment(b, "breakeven-sens") }
func BenchmarkModelCrossCheck(b *testing.B) { benchExperiment(b, "crosscheck") }

// Component micro-benchmarks: the substrate costs behind the experiments.

// BenchmarkPipelineSimulation is the tracked throughput baseline of the
// cycle engine: simulated instructions per second, simulated cycles per
// second, and steady-state allocations per run. BENCH_pipeline.json records
// the trajectory across PRs (seed vs. current); CI runs this benchmark with
// -benchtime=3x so regressions show up in the logs. Refresh the snapshot
// with:
//
//	go test -run=xxx -bench=PipelineSimulation -benchtime=3x -benchmem
func BenchmarkPipelineSimulation(b *testing.B) {
	const window = 100_000
	// Cache off so every iteration measures a real simulation.
	eng := fusleep.NewEngine(fusleep.WithWindow(window), fusleep.WithCache(false))
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rep, err := eng.Simulate(context.Background(), "gcc")
		if err != nil {
			b.Fatal(err)
		}
		cycles += rep.Cycles
	}
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(window)*float64(b.N)/secs, "inst/s")
		b.ReportMetric(float64(cycles)/secs, "cycles/s")
	}
}

// BenchmarkTunerSearch is the tracked throughput baseline of the optimize
// driver: cell evaluations per second through a warmed simulation cache,
// i.e. the cost of the search machinery itself (candidate generation,
// closed-form energy evaluation, frontier maintenance) rather than the
// pipeline. BENCH_tune.json records the baseline; CI gates on cells/s and
// allocs/op. Refresh the snapshot with:
//
//	go test -run=xxx -bench=TunerSearch -benchtime=3x -benchmem
func BenchmarkTunerSearch(b *testing.B) {
	const window = 50_000
	eng := fusleep.NewEngine(fusleep.WithWindow(window))
	space := fusleep.TuneSpace{
		Benchmarks:   []string{"gcc"},
		FUCounts:     []int{2, 4},
		TimeoutRange: [2]int{1, 256},
		SlicesRange:  [2]int{1, 128},
		Window:       window,
	}
	opts := []fusleep.TuneOption{fusleep.WithTuneSpace(space), fusleep.WithTuneBudget(48)}
	// Warm the two suite simulations so iterations measure the tuner.
	if _, err := eng.Optimize(context.Background(), opts...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var evals int
	for i := 0; i < b.N; i++ {
		res, err := eng.Optimize(context.Background(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Evals
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(evals)/secs, "cells/s")
	}
}

func BenchmarkEnergyAccounting(b *testing.B) {
	rep, err := fusleep.NewEngine().Simulate(context.Background(), "twolf", fusleep.SimWindow(200_000))
	if err != nil {
		b.Fatal(err)
	}
	tech := fusleep.DefaultTech()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range fusleep.Policies {
			e := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: pol}, 0.5, rep.FUProfiles)
			if e.Total() <= 0 {
				b.Fatal("non-positive energy")
			}
		}
	}
}

func BenchmarkBreakeven(b *testing.B) {
	tech := fusleep.DefaultTech()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tech.WithP(0.05 + float64(i%90)/100).Breakeven(0.5)
	}
	_ = sink
}

func BenchmarkCircuitCycle(b *testing.B) {
	fu, err := fusleep.NewCircuitFU(fusleep.DefaultFUCircuit())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0, 1:
			_ = fu.Evaluate(0.5)
		case 2:
			fu.IdleGated()
		default:
			_ = fu.Sleep()
		}
	}
}
