package fusleep

import (
	"context"
	"io"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/report"
)

// Artifact is one structured, machine-readable experiment result: an
// identified, titled payload that is either a table of rows or a set of
// named curves. Render artifacts with RenderText, RenderJSON, or RenderCSV.
type Artifact = report.Artifact

// ArtifactKind discriminates an Artifact's typed payload.
type ArtifactKind = report.ArtifactKind

// Artifact payload kinds.
const (
	KindTable  = report.KindTable
	KindSeries = report.KindSeries
)

// Table is a titled grid with a header row — the payload of a KindTable
// artifact.
type Table = report.Table

// Series is a titled set of named curves sharing an x axis — the payload
// of a KindSeries artifact.
type Series = report.Series

// NewTable builds an empty table with the given header.
func NewTable(title string, columns ...string) *Table { return report.NewTable(title, columns...) }

// NewSeries builds an empty series set with the given curve names.
func NewSeries(title, xlabel, ylabel string, names ...string) *Series {
	return report.NewSeries(title, xlabel, ylabel, names...)
}

// TableArtifact wraps a table as an ad-hoc artifact.
func TableArtifact(id string, t *Table) Artifact { return report.TableArtifact(id, t) }

// SeriesArtifact wraps a series set as an ad-hoc artifact.
func SeriesArtifact(id string, s *Series) Artifact { return report.SeriesArtifact(id, s) }

// Renderer writes a set of artifacts in one output format.
type Renderer = report.Renderer

// RenderText writes artifacts as aligned text tables with identity banners.
func RenderText(w io.Writer, artifacts []Artifact) error { return report.RenderText(w, artifacts) }

// RenderJSON writes artifacts as one indented JSON array that unmarshals
// back into []Artifact.
func RenderJSON(w io.Writer, artifacts []Artifact) error { return report.RenderJSON(w, artifacts) }

// RenderCSV writes each artifact as a titled CSV block.
func RenderCSV(w io.Writer, artifacts []Artifact) error { return report.RenderCSV(w, artifacts) }

// RenderNDJSON writes each artifact as one compact JSON object per line,
// for incremental consumers; each line unmarshals back into an Artifact.
func RenderNDJSON(w io.Writer, artifacts []Artifact) error { return report.RenderNDJSON(w, artifacts) }

// RendererFor maps a format name ("text", "json", "csv", "ndjson") to its
// renderer.
func RendererFor(format string) (Renderer, error) { return report.RendererFor(format) }

// Formats lists the built-in renderer names.
func Formats() []string { return report.Formats() }

// Grid describes a batch evaluation for Engine.Sweep: every policy ×
// technology point × FU-count combination is scored over the benchmark
// suite. Zero-valued fields select defaults (the paper's four policies, the
// engine's technology, the paper's per-benchmark FU counts, all nine
// benchmarks, alpha 0.5, 12-cycle L2, the engine's window).
type Grid = experiments.Grid

// CellStore is a durable, content-addressed cell-result store keyed by
// Cell.Key: the engine consults it before recomputing a cell and journals
// fresh results to it, so completed work survives process crashes.
// internal/store provides the journal-backed implementation; attach one
// with WithResultStore.
type CellStore = experiments.CellStore

// CellError is a contained cell-evaluation failure: the cell's identity
// plus a transient/panicked/timed-out classification that retry policies
// act on.
type CellError = experiments.CellError

// IsTransientCellError reports whether err is a retryable cell failure.
func IsTransientCellError(err error) bool { return experiments.IsTransientCellError(err) }

// Engine is the long-lived entry point of the package: it owns a shared
// simulation cache, a parallelism bound, and default scale parameters, so
// many scenario requests — single benchmarks, paper experiments, batch
// grids — can be served concurrently without re-paying for simulations.
// Engines are safe for concurrent use; every method honors its context.
type Engine struct {
	window     uint64
	sweep      uint64
	parallel   int
	tech       Tech
	classTechs map[FUClass]Tech
	cache      bool
	store      CellStore
	runner     *experiments.Runner
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithWindow sets the default per-benchmark instruction count
// (default 1,000,000). Zero is ignored.
func WithWindow(n uint64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.window = n
		}
	}
}

// WithSweep sets the per-run instruction count for FU-count sweep
// experiments such as Table 3 (default 750,000). Zero is ignored.
func WithSweep(n uint64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.sweep = n
		}
	}
}

// WithParallelism bounds concurrent pipeline simulations (default: the
// benchmark-suite size). Values < 1 are ignored.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.parallel = n
		}
	}
}

// WithTech sets the engine's default technology point, used by Sweep when
// the grid names none (default: DefaultTech, the paper's p = 0.05 point).
func WithTech(t Tech) Option {
	return func(e *Engine) { e.tech = t }
}

// WithCache enables or disables the cross-call simulation cache
// (default: enabled).
func WithCache(enabled bool) Option {
	return func(e *Engine) { e.cache = enabled }
}

// WithClassTechs sets the engine's default per-class technology overrides:
// grids and cells that carry none inherit this map, so a machine whose FP
// multiplier leaks differently from its integer ALUs configures that once.
// The map is copied.
func WithClassTechs(m map[FUClass]Tech) Option {
	return func(e *Engine) {
		if len(m) == 0 {
			return
		}
		e.classTechs = make(map[FUClass]Tech, len(m))
		for c, t := range m {
			e.classTechs[c] = t
		}
	}
}

// WithResultStore attaches a durable cell-result store (see CellStore):
// cell evaluations consult it before simulating and journal fresh results
// after, making completed sweep work crash-safe and shareable across
// restarts. Nil is ignored.
func WithResultStore(s CellStore) Option {
	return func(e *Engine) { e.store = s }
}

// NewEngine builds an engine with the given options.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		window: 1_000_000,
		sweep:  750_000,
		tech:   core.DefaultTech(),
		cache:  true,
	}
	for _, o := range opts {
		o(e)
	}
	e.runner = experiments.NewRunner(experiments.Options{
		Window:       e.window,
		Sweep:        e.sweep,
		Parallel:     e.parallel,
		DisableCache: !e.cache,
	})
	if e.store != nil {
		e.runner.SetCellStore(e.store)
	}
	return e
}

// Window returns the engine's default per-benchmark instruction count.
func (e *Engine) Window() uint64 { return e.window }

// SweepWindow returns the engine's per-run FU-sweep instruction count.
func (e *Engine) SweepWindow() uint64 { return e.sweep }

// Parallelism returns the configured simulation bound (0 = suite size).
func (e *Engine) Parallelism() int { return e.parallel }

// Tech returns the engine's default technology point.
func (e *Engine) Tech() Tech { return e.tech }

// ClassTechs returns a copy of the engine's default per-class technology
// overrides (nil when none are configured).
func (e *Engine) ClassTechs() map[FUClass]Tech {
	if e.classTechs == nil {
		return nil
	}
	out := make(map[FUClass]Tech, len(e.classTechs))
	for c, t := range e.classTechs {
		out[c] = t
	}
	return out
}

// CacheEnabled reports whether cross-call simulation caching is on.
func (e *Engine) CacheEnabled() bool { return e.cache }

// simConfig holds per-call simulation parameters.
type simConfig struct {
	window uint64
	mix    experiments.FUMix
	l2     int
}

// SimOption configures one Engine.Simulate call.
type SimOption func(*simConfig)

// SimWindow overrides the instruction count for one simulation.
func SimWindow(n uint64) SimOption { return func(c *simConfig) { c.window = n } }

// SimFUs sets the integer functional-unit count; 0 selects the paper's
// Table 3 count for the benchmark.
func SimFUs(n int) SimOption { return func(c *simConfig) { c.mix.IntALUs = n } }

// SimAGUs provisions dedicated address-generation units; 0 (the default)
// issues address generation down the integer ALU ports.
func SimAGUs(n int) SimOption { return func(c *simConfig) { c.mix.AGUs = n } }

// SimMults sets the dedicated multiplier unit count (0 = the Table 2
// default of one).
func SimMults(n int) SimOption { return func(c *simConfig) { c.mix.Mults = n } }

// SimFPALUs sets the FP adder unit count (0 = the Table 2 default of one).
func SimFPALUs(n int) SimOption { return func(c *simConfig) { c.mix.FPALUs = n } }

// SimFPMults sets the FP multiplier unit count (0 = the Table 2 default of
// one).
func SimFPMults(n int) SimOption { return func(c *simConfig) { c.mix.FPMults = n } }

// SimL2Latency sets the unified L2 hit latency in cycles (default 12).
func SimL2Latency(n int) SimOption { return func(c *simConfig) { c.l2 = n } }

// Simulate runs one suite benchmark on the Table 2 machine and returns its
// measured report. Results are cached across calls (same benchmark,
// FU count, L2 latency, and window) unless the cache is disabled, and the
// run aborts promptly when ctx is canceled.
func (e *Engine) Simulate(ctx context.Context, name string, opts ...SimOption) (BenchmarkReport, error) {
	cfg := simConfig{window: e.window, l2: 12}
	for _, o := range opts {
		o(&cfg)
	}
	res, err := e.runner.SimMix(ctx, name, cfg.mix, cfg.l2, cfg.window)
	if err != nil {
		return BenchmarkReport{}, err
	}
	rep := BenchmarkReport{
		Name:                  name,
		FUs:                   len(res.FUs),
		Cycles:                res.Cycles,
		Committed:             res.Committed,
		IPC:                   res.IPC(),
		BranchAccuracy:        res.Bpred.DirAccuracy(),
		Mispredicts:           res.Bpred.Mispredicts,
		L1IMissRate:           res.L1I.MissRate(),
		L1DMissRate:           res.L1D.MissRate(),
		L2MissRate:            res.L2.MissRate(),
		DTLBMissRate:          res.DTLB.MissRate(),
		LoadForwards:          res.LoadForwards,
		FetchMispredictStalls: res.FetchMispredictStalls,
		MeanFUUtilization:     res.MeanFUUtilization(),
	}
	for _, prof := range res.FUs {
		rep.FUProfiles = append(rep.FUProfiles, toIdleProfile(prof))
	}
	rep.ClassProfiles = make(map[FUClass][]*IdleProfile, len(res.Classes))
	for _, cp := range res.Classes {
		profs := make([]*IdleProfile, 0, len(cp.Units))
		for _, prof := range cp.Units {
			profs = append(profs, toIdleProfile(prof))
		}
		rep.ClassProfiles[cp.Class] = profs
	}
	return rep, nil
}

// toIdleProfile converts a measured unit profile into the energy model's
// form.
func toIdleProfile(prof pipeline.FUProfile) *IdleProfile {
	p := core.NewIdleProfile()
	p.ActiveCycles = prof.ActiveCycles
	for l, n := range prof.Intervals {
		p.AddIdle(l, n)
	}
	return p
}

// Experiments lists every table/figure reproduction and extension.
func (e *Engine) Experiments() []ExperimentInfo { return Experiments() }

// RunExperiments executes the named experiments in order against the
// engine's shared simulation cache and returns their structured artifacts.
// With no ids it runs every registered experiment.
func (e *Engine) RunExperiments(ctx context.Context, ids ...string) ([]Artifact, error) {
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	var arts []Artifact
	for _, id := range ids {
		exp, err := experiments.ByID(id)
		if err != nil {
			return nil, err
		}
		a, err := exp.Artifacts(ctx, e.runner)
		if err != nil {
			return nil, err
		}
		arts = append(arts, a...)
	}
	return arts, nil
}

// RunExperiment executes one experiment by ID.
func (e *Engine) RunExperiment(ctx context.Context, id string) ([]Artifact, error) {
	return e.RunExperiments(ctx, id)
}

// Sweep evaluates a policy × technology × FU-count grid over the benchmark
// suite in one batch: one (cached, parallel, cancelable) suite simulation
// per FU count, then the closed-form energy model at every grid point. It
// returns a table artifact with one row per combination.
func (e *Engine) Sweep(ctx context.Context, g Grid) ([]Artifact, error) {
	return experiments.RunSweep(ctx, e.runner, e.resolveGrid(g), e.tech)
}

// Cell is one fully-resolved sweep grid point: a policy evaluated at one
// technology point and FU count over a fixed benchmark set. Cell.Key()
// returns a stable configuration hash, so services can shard and dedupe
// identical cells.
type Cell = experiments.Cell

// CellResult is one completed sweep cell: its identity plus the
// suite-averaged relative energy and leakage fraction.
type CellResult = experiments.CellResult

// EngineStats snapshots the engine's simulation accounting: completed
// pipeline simulations, cache hits, and joins onto identical in-flight
// runs. Its HitRate method folds the hits into a single utilization figure.
type EngineStats = experiments.RunnerStats

// Cells expands a grid into its ordered cell list after resolving zero
// values against the engine's defaults, without running anything. The order
// matches Sweep's row order and CellResult.Index.
func (e *Engine) Cells(g Grid) []Cell {
	return e.resolveGrid(g).Cells(e.tech)
}

// resolveGrid fills a grid's zero-valued scale and technology fields from
// the engine's defaults.
func (e *Engine) resolveGrid(g Grid) Grid {
	if g.Window == 0 {
		g.Window = e.window
	}
	if g.ClassTechs == nil {
		g.ClassTechs = e.ClassTechs()
	}
	return g
}

// RunCell evaluates one sweep cell against the engine's shared simulation
// cache: the cell's benchmark suite is simulated (or re-used) at its FU
// count, then the closed-form energy model is applied at its technology ×
// policy point. The returned result's Index is zero; grid enumerators set
// it. Identical cells are deduplicated through the cache, so re-running a
// cell is a map lookup.
func (e *Engine) RunCell(ctx context.Context, c Cell) (CellResult, error) {
	return experiments.EvalCell(ctx, e.runner, e.resolveCell(c))
}

// RunCells evaluates a batch of sweep cells with shared-pass batching:
// cells that share a simulation identity (benchmark set, FU mix, L2
// latency, window) simulate once, and their policy/technology variants are
// evaluated closed-form off the recorded idle-interval profiles. Per-cell
// results are identical to calling RunCell on each cell; results return in
// input order. This is the evaluation path Optimize uses for each tuner
// round.
func (e *Engine) RunCells(ctx context.Context, cells []Cell) ([]CellResult, error) {
	resolved := make([]Cell, len(cells))
	for i, c := range cells {
		resolved[i] = e.resolveCell(c)
	}
	return experiments.EvalCells(ctx, e.runner, resolved)
}

// resolveCell fills a cell's zero-valued window and class-technology fields
// from the engine's defaults.
func (e *Engine) resolveCell(c Cell) Cell {
	if c.Window == 0 {
		c.Window = e.window
	}
	if c.ClassTechs == nil {
		c.ClassTechs = e.ClassTechs()
	}
	return c
}

// SweepStream evaluates a grid cell by cell, invoking fn with each
// completed CellResult in grid order — the incremental form of Sweep, for
// callers (services, progress UIs, partial-output flushing) that need
// results as they complete rather than one artifact at the end. Evaluation
// stops at the first cell error or the first non-nil error from fn.
func (e *Engine) SweepStream(ctx context.Context, g Grid, fn func(CellResult) error) error {
	return experiments.RunSweepStream(ctx, e.runner, e.resolveGrid(g), e.tech, fn)
}

// Stats returns a snapshot of the engine's simulation accounting. Services
// expose it as their cache-utilization metric.
func (e *Engine) Stats() EngineStats { return e.runner.Stats() }

// NewSweepTable returns the empty standard sweep result table for a grid —
// the same table Sweep produces — so SweepStream consumers can accumulate
// partial results in the canonical format.
func (e *Engine) NewSweepTable(g Grid) *Table {
	return experiments.SweepTable(e.resolveGrid(g), e.tech)
}

// NewClassSweepTable returns the empty per-class companion table of a
// class-aware sweep; fill it with AddClassRows.
func (e *Engine) NewClassSweepTable(g Grid) *Table {
	return experiments.ClassSweepTable(e.resolveGrid(g), e.tech)
}

// AddSweepRow appends one completed cell to a sweep table in Sweep's row
// format.
func AddSweepRow(t *Table, res CellResult) { experiments.AddSweepRow(t, res) }

// AddClassRows appends one completed cell's per-class breakdown to a
// per-class sweep table (one row per studied class).
func AddClassRows(t *Table, res CellResult) { experiments.AddClassRows(t, res) }
