package fusleep_test

import (
	"bytes"
	"context"
	"testing"

	"github.com/archsim/fusleep"
)

// sweepJSON runs a small full-suite Sweep grid on a fresh engine built with
// the given options and returns the rendered JSON artifacts, which include
// every table row and so pin the complete result surface.
func sweepJSON(t *testing.T, opts ...fusleep.Option) []byte {
	t.Helper()
	base := []fusleep.Option{fusleep.WithWindow(40_000), fusleep.WithSweep(40_000)}
	eng := fusleep.NewEngine(append(base, opts...)...)
	arts, err := eng.Sweep(context.Background(), fusleep.Grid{Window: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fusleep.RenderJSON(&buf, arts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepIndependentOfCache asserts Engine.Sweep results do not depend on
// whether the cross-call simulation cache is enabled: caching may only
// change how often simulations run, never what they measure.
func TestSweepIndependentOfCache(t *testing.T) {
	cached := sweepJSON(t)
	uncached := sweepJSON(t, fusleep.WithCache(false))
	if !bytes.Equal(cached, uncached) {
		t.Errorf("sweep results differ with cache off:\n cached: %s\nuncached: %s", cached, uncached)
	}
}

// TestSweepIndependentOfParallelism asserts Engine.Sweep results do not
// depend on the parallelism bound: simulations are isolated per benchmark,
// so scheduling them serially or concurrently must measure the same
// machine.
func TestSweepIndependentOfParallelism(t *testing.T) {
	serial := sweepJSON(t, fusleep.WithParallelism(1))
	wide := sweepJSON(t, fusleep.WithParallelism(16))
	if !bytes.Equal(serial, wide) {
		t.Errorf("sweep results differ across parallelism:\nserial: %s\n  wide: %s", serial, wide)
	}
}
