package fusleep

import (
	"fmt"
	"io"

	"github.com/archsim/fusleep/internal/circuit"
	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

// Core energy-model types, re-exported from the implementation package.
type (
	// Tech holds the four technology parameters of the energy model:
	// leakage factor p, low/high leakage ratio c, sleep-assert overhead,
	// and clock duty cycle.
	Tech = core.Tech
	// Policy identifies a sleep-management strategy.
	Policy = core.Policy
	// PolicyConfig pairs a policy with its tuning knobs (GradualSleep
	// slice count).
	PolicyConfig = core.PolicyConfig
	// Breakdown splits normalized energy by physical source.
	Breakdown = core.Breakdown
	// CycleCounts aggregates active / uncontrolled-idle / sleep cycles and
	// sleep transitions.
	CycleCounts = core.CycleCounts
	// Scenario is the closed-form workload of the paper's Section 3.1.
	Scenario = core.Scenario
	// IdleProfile is a functional unit's measured activity: active cycles
	// plus the multiset of idle interval lengths.
	IdleProfile = core.IdleProfile
	// Controller is the cycle-by-cycle executable form of a policy.
	Controller = core.Controller
)

// The sleep-management policies of the paper, plus the SleepTimeout
// extension (a breakeven-threshold ski-rental controller).
const (
	AlwaysActive  = core.AlwaysActive
	MaxSleep      = core.MaxSleep
	NoOverhead    = core.NoOverhead
	GradualSleep  = core.GradualSleep
	OracleMinimal = core.OracleMinimal
	SleepTimeout  = core.SleepTimeout
)

// Policies lists the four policies of the result figures in bar order.
var Policies = core.Policies

// DefaultTech returns the paper's Table 4 analysis parameters at the
// near-term technology point p = 0.05.
func DefaultTech() Tech { return core.DefaultTech() }

// HighLeakTech returns the contrasting p = 0.50 technology point.
func HighLeakTech() Tech { return core.HighLeakTech() }

// NewIdleProfile returns an empty profile ready for recording.
func NewIdleProfile() *IdleProfile { return core.NewIdleProfile() }

// NewController builds the causal cycle-level controller for a policy.
func NewController(pc PolicyConfig, t Tech, alpha float64) (Controller, error) {
	return core.NewController(pc, t, alpha)
}

// PolicyEnergy evaluates the equation-(3) energy of running a policy over
// measured per-unit idle profiles, summed across units.
func PolicyEnergy(t Tech, pc PolicyConfig, alpha float64, profiles []*IdleProfile) Breakdown {
	var total Breakdown
	for _, p := range profiles {
		total = total.Add(t.EvalProfile(pc, alpha, p))
	}
	return total
}

// Circuit-level model (Section 2 of the paper).
type (
	// CircuitFU is the cycle-level 500-gate functional-unit circuit.
	CircuitFU = circuit.FU
	// FUConfig describes the functional-unit circuit geometry.
	FUConfig = circuit.FUConfig
	// GateParams characterizes one domino gate design point (Table 1).
	GateParams = circuit.GateParams
)

// DefaultFUCircuit returns the paper's generic 500-gate dual-Vt unit.
func DefaultFUCircuit() FUConfig { return circuit.DefaultFU() }

// NewCircuitFU builds a simulated functional-unit circuit.
func NewCircuitFU(cfg FUConfig) (*CircuitFU, error) { return circuit.NewFU(cfg) }

// SimOptions parameterize a benchmark simulation.
type SimOptions struct {
	// Window is the instruction count (default 1,000,000).
	Window uint64
	// FUs is the integer functional-unit count; 0 selects the paper's
	// Table 3 count for the benchmark.
	FUs int
	// L2Latency is the unified L2 hit latency in cycles (default 12).
	L2Latency int
}

// BenchmarkReport is the outcome of one simulated benchmark run.
type BenchmarkReport struct {
	Name      string
	FUs       int
	Cycles    uint64
	Committed uint64
	IPC       float64
	// FUProfiles holds one measured idle profile per integer unit, ready
	// for PolicyEnergy.
	FUProfiles []*IdleProfile
	// BranchAccuracy is the conditional-branch direction hit rate.
	BranchAccuracy float64
	// L1DMissRate and L2MissRate summarize the data-side cache behavior.
	L1DMissRate float64
	L2MissRate  float64
}

// BenchmarkNames lists the nine-benchmark suite in the paper's order.
func BenchmarkNames() []string { return workload.Names() }

// SimulateBenchmark runs one suite benchmark on the Table 2 machine and
// returns its measured report.
func SimulateBenchmark(name string, opts SimOptions) (BenchmarkReport, error) {
	spec, err := workload.ByName(name)
	if err != nil {
		return BenchmarkReport{}, err
	}
	if opts.Window == 0 {
		opts.Window = 1_000_000
	}
	if opts.FUs == 0 {
		opts.FUs = spec.PaperFUs
	}
	if opts.L2Latency == 0 {
		opts.L2Latency = 12
	}
	cfg := pipeline.DefaultConfig().WithIntALUs(opts.FUs).WithL2Latency(opts.L2Latency)
	cfg.MaxInsts = opts.Window
	cpu, err := pipeline.New(cfg, spec.NewTrace(opts.Window))
	if err != nil {
		return BenchmarkReport{}, err
	}
	res, err := cpu.Run()
	if err != nil {
		return BenchmarkReport{}, err
	}
	rep := BenchmarkReport{
		Name:           name,
		FUs:            opts.FUs,
		Cycles:         res.Cycles,
		Committed:      res.Committed,
		IPC:            res.IPC(),
		BranchAccuracy: res.Bpred.DirAccuracy(),
		L1DMissRate:    res.L1D.MissRate(),
		L2MissRate:     res.L2.MissRate(),
	}
	for _, fu := range res.FUs {
		p := core.NewIdleProfile()
		p.ActiveCycles = fu.ActiveCycles
		for l, n := range fu.Intervals {
			p.AddIdle(l, n)
		}
		rep.FUProfiles = append(rep.FUProfiles, p)
	}
	return rep, nil
}

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID        string
	Paper     string
	Desc      string
	Simulated bool
}

// Experiments lists every table/figure reproduction and extension.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, 0, len(experiments.All))
	for _, e := range experiments.All {
		out = append(out, ExperimentInfo{ID: e.ID, Paper: e.Paper, Desc: e.Desc, Simulated: e.Simulated})
	}
	return out
}

// ExperimentOptions scale the simulated experiments.
type ExperimentOptions struct {
	// Window is the per-benchmark instruction count (default 1,000,000).
	Window uint64
	// Sweep is the per-run count for the Table 3 FU sweep (default 750,000).
	Sweep uint64
}

// RunExperiment executes one experiment by ID and renders its artifacts to
// w. For several simulated experiments prefer RunExperiments, which shares
// the cached suite simulations.
func RunExperiment(id string, w io.Writer, opts ExperimentOptions) error {
	return RunExperiments([]string{id}, w, opts)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opts ExperimentOptions) error {
	return RunExperiments(experiments.IDs(), w, opts)
}

// RunExperiments executes the given experiments in order with one shared
// runner, so suite simulations are paid for once.
func RunExperiments(ids []string, w io.Writer, opts ExperimentOptions) error {
	runner := experiments.NewRunner(experiments.Options{Window: opts.Window, Sweep: opts.Sweep})
	for _, id := range ids {
		exp, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		arts, err := exp.Run(runner)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		for _, a := range arts {
			if _, err := fmt.Fprintf(w, "== [%s] %s ==\n", exp.ID, exp.Paper); err != nil {
				return err
			}
			if err := a.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
