package fusleep

import (
	"github.com/archsim/fusleep/internal/circuit"
	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/workload"
)

// Core energy-model types, re-exported from the implementation package.
type (
	// Tech holds the four technology parameters of the energy model:
	// leakage factor p, low/high leakage ratio c, sleep-assert overhead,
	// and clock duty cycle.
	Tech = core.Tech
	// Policy identifies a sleep-management strategy.
	Policy = core.Policy
	// PolicyConfig pairs a policy with its tuning knobs (GradualSleep
	// slice count).
	PolicyConfig = core.PolicyConfig
	// Breakdown splits normalized energy by physical source.
	Breakdown = core.Breakdown
	// CycleCounts aggregates active / uncontrolled-idle / sleep cycles and
	// sleep transitions.
	CycleCounts = core.CycleCounts
	// Scenario is the closed-form workload of the paper's Section 3.1.
	Scenario = core.Scenario
	// IdleProfile is a functional unit's measured activity: active cycles
	// plus the multiset of idle interval lengths.
	IdleProfile = core.IdleProfile
	// Controller is the cycle-by-cycle executable form of a policy.
	Controller = core.Controller
)

// The sleep-management policies of the paper, plus the SleepTimeout
// extension (a breakeven-threshold ski-rental controller).
const (
	AlwaysActive  = core.AlwaysActive
	MaxSleep      = core.MaxSleep
	NoOverhead    = core.NoOverhead
	GradualSleep  = core.GradualSleep
	OracleMinimal = core.OracleMinimal
	SleepTimeout  = core.SleepTimeout
)

// Policies lists the four policies of the result figures in bar order.
var Policies = core.Policies

// ParsePolicy maps a policy's paper name (case-insensitively) back to its
// value — the inverse of Policy.String, for wire formats and flags.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// ParsePolicyConfig parses the Policy[:slices=K][:timeout=T] term syntax —
// the inverse of PolicyConfig.String, for flags and assignment terms.
func ParsePolicyConfig(s string) (PolicyConfig, error) { return core.ParsePolicyConfig(s) }

// Per-class sleep management: functional-unit classes and policy
// assignments, re-exported from the implementation packages. The paper's
// classes differ in idle-interval structure and breakeven point, so a
// machine carries one policy (and optionally one technology point) per
// class instead of one policy for every unit.
type (
	// FUClass identifies one functional-unit class of the Table 2 machine.
	FUClass = fu.Class
	// Assignment maps classes to their sleep-policy configuration; it
	// JSON-encodes as an object keyed by class name.
	Assignment = core.Assignment
)

// The functional-unit classes of the simulated machine. FUAGU shares the
// integer ALU ports unless the machine provisions dedicated AGUs.
const (
	FUIntALU = fu.IntALU
	FUAGU    = fu.AGU
	FUMult   = fu.Mult
	FUFPALU  = fu.FPALU
	FUFPMult = fu.FPMult
)

// FUClasses lists every functional-unit class in canonical order.
func FUClasses() []FUClass { return fu.Classes() }

// ParseFUClass maps a class name ("intalu", "agu", "mult", "fpalu",
// "fpmult", case-insensitively) to its value.
func ParseFUClass(name string) (FUClass, error) { return fu.ParseClass(name) }

// ParseFUClasses parses a comma-separated class list, rejecting
// duplicates.
func ParseFUClasses(s string) ([]FUClass, error) { return fu.ParseClasses(s) }

// UniformAssignment assigns one policy configuration to every class — the
// assignment that reproduces the single-pool results.
func UniformAssignment(pc PolicyConfig) Assignment { return core.UniformAssignment(pc) }

// ParseAssignment parses comma-separated class=Policy[:slices=K][:timeout=T]
// terms ("intalu=GradualSleep:slices=4,fpalu=MaxSleep") — the inverse of
// Assignment.String, for flags and wire formats.
func ParseAssignment(s string) (Assignment, error) { return core.ParseAssignment(s) }

// ClassBreakeven resolves one class's breakeven idle interval under its
// effective technology point (the per-class override when present, else
// the default) — the quantity that drives each class's GradualSleep slice
// count and SleepTimeout threshold defaults.
func ClassBreakeven(def Tech, overrides map[FUClass]Tech, c FUClass, alpha float64) float64 {
	return core.ClassBreakeven(def, overrides, c, alpha)
}

// DefaultTech returns the paper's Table 4 analysis parameters at the
// near-term technology point p = 0.05.
func DefaultTech() Tech { return core.DefaultTech() }

// HighLeakTech returns the contrasting p = 0.50 technology point.
func HighLeakTech() Tech { return core.HighLeakTech() }

// NewIdleProfile returns an empty profile ready for recording.
func NewIdleProfile() *IdleProfile { return core.NewIdleProfile() }

// NewController builds the causal cycle-level controller for a policy.
func NewController(pc PolicyConfig, t Tech, alpha float64) (Controller, error) {
	return core.NewController(pc, t, alpha)
}

// PolicyEnergy evaluates the equation-(3) energy of running a policy over
// measured per-unit idle profiles, summed across units.
func PolicyEnergy(t Tech, pc PolicyConfig, alpha float64, profiles []*IdleProfile) Breakdown {
	var total Breakdown
	for _, p := range profiles {
		total = total.Add(t.EvalProfile(pc, alpha, p))
	}
	return total
}

// Circuit-level model (Section 2 of the paper).
type (
	// CircuitFU is the cycle-level 500-gate functional-unit circuit.
	CircuitFU = circuit.FU
	// FUConfig describes the functional-unit circuit geometry.
	FUConfig = circuit.FUConfig
	// GateParams characterizes one domino gate design point (Table 1).
	GateParams = circuit.GateParams
)

// DefaultFUCircuit returns the paper's generic 500-gate dual-Vt unit.
func DefaultFUCircuit() FUConfig { return circuit.DefaultFU() }

// NewCircuitFU builds a simulated functional-unit circuit.
func NewCircuitFU(cfg FUConfig) (*CircuitFU, error) { return circuit.NewFU(cfg) }

// BenchmarkReport is the outcome of one simulated benchmark run.
type BenchmarkReport struct {
	Name      string
	FUs       int
	Cycles    uint64
	Committed uint64
	IPC       float64
	// FUProfiles holds one measured idle profile per integer unit, ready
	// for PolicyEnergy.
	FUProfiles []*IdleProfile
	// ClassProfiles holds the measured idle profiles of every functional-
	// unit class, keyed by class. The FUAGU entry appears only when the
	// machine was provisioned with dedicated AGUs (SimAGUs); by default
	// address generation lands in the FUIntALU profiles.
	ClassProfiles map[FUClass][]*IdleProfile
	// MeanFUUtilization is the mean fraction of cycles the integer units
	// spent computing.
	MeanFUUtilization float64
	// BranchAccuracy is the conditional-branch direction hit rate;
	// Mispredicts counts resolved mispredictions.
	BranchAccuracy float64
	Mispredicts    uint64
	// L1IMissRate, L1DMissRate, and L2MissRate summarize cache behavior;
	// DTLBMissRate the data-side translation behavior.
	L1IMissRate  float64
	L1DMissRate  float64
	L2MissRate   float64
	DTLBMissRate float64
	// LoadForwards counts loads satisfied by store-queue forwarding;
	// FetchMispredictStalls counts cycles fetch sat stalled on redirects.
	LoadForwards          uint64
	FetchMispredictStalls uint64
}

// BenchmarkNames lists the nine-benchmark suite in the paper's order.
func BenchmarkNames() []string { return workload.Names() }

// BenchmarkInfo describes one suite benchmark together with the paper's
// published Table 3 calibration numbers.
type BenchmarkInfo struct {
	Name  string
	Suite string
	// PaperFUs is the paper's functional-unit selection; PaperIPC and
	// PaperMaxIPC its published IPC at that count and at four units.
	PaperFUs    int
	PaperIPC    float64
	PaperMaxIPC float64
}

// Benchmarks describes the suite with the paper's reference numbers, for
// calibration comparisons against simulated results.
func Benchmarks() []BenchmarkInfo {
	out := make([]BenchmarkInfo, 0, len(workload.Benchmarks))
	for _, s := range workload.Benchmarks {
		out = append(out, BenchmarkInfo{
			Name: s.Name, Suite: s.Suite,
			PaperFUs: s.PaperFUs, PaperIPC: s.PaperIPC, PaperMaxIPC: s.PaperMaxIPC,
		})
	}
	return out
}

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID        string
	Paper     string
	Desc      string
	Simulated bool
}

// Experiments lists every table/figure reproduction and extension.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, 0, len(experiments.All))
	for _, e := range experiments.All {
		out = append(out, ExperimentInfo{ID: e.ID, Paper: e.Paper, Desc: e.Desc, Simulated: e.Simulated})
	}
	return out
}
